// Package core assembles the paper's contribution into a working
// prefetching front-end: prefetch candidates from a prediction engine
// (internal/prefetch) flow through the recent-demand filter and the
// LIFO prefetch queue of Section 4.1, are tag-probed against the L1
// instruction cache, and are installed under either the conventional or
// the L2-bypass policy of Section 7. The front-end also implements the
// oracle miss elimination used by the limits study (Figure 4).
package core

import (
	"repro/internal/isa"
)

// entryState tracks a prefetch-queue slot's lifecycle. The paper keeps
// issued and invalidated entries around in unused slots as a duplicate
// filter; they are reclaimed before any waiting entry is dropped.
type entryState uint8

const (
	stateEmpty entryState = iota
	stateWaiting
	stateIssued
	stateInvalid
)

type queueEntry struct {
	line  isa.Line
	state entryState
	seq   uint64 // insertion order; higher is newer
}

// PrefetchQueue is the paper's per-core prefetch queue (Section 4.1):
//
//   - finite (32 entries), managed last-in first-out so the freshest
//     predictions issue first;
//   - never contains duplicate prefetches: a push matching a waiting
//     entry hoists that entry to the head instead, and a push matching
//     an issued or invalidated entry is dropped;
//   - demand fetches invalidate matching waiting entries;
//   - issued and invalidated entries linger in otherwise-unused slots to
//     extend the duplicate filter, and are reclaimed first on overflow;
//   - when all slots hold waiting prefetches, the oldest waiting entry
//     is dropped to admit the new one.
//
// The semantics above are naturally expressed as linear scans over the
// slot array (match by line; min/max by seq), but those scans run per
// prefetch candidate on the simulator's hot path. The implementation
// instead keeps a line→slot index (a line appears in at most one
// non-empty slot, because pushes deduplicate) plus two intrusive
// seq-ordered lists — waiting entries and issued/invalidated "marker"
// entries — so every operation the scans performed is O(1) lookups and
// list splices with identical observable behaviour. queue_model_test.go
// checks that equivalence against a scan-based reference model.
type PrefetchQueue struct {
	entries []queueEntry
	nextSeq uint64

	idx *lineIndex // line → slot, for every non-empty slot

	// Intrusive doubly-linked lists over slots, ordered by seq
	// ascending (head = oldest). A slot is on the waiting list, on the
	// marker list, or empty; the link arrays are shared.
	next, prev   []int32
	wHead, wTail int32 // waiting entries
	mHead, mTail int32 // issued/invalidated markers
	waiting      int
	filled       int // slots in use; slots are claimed in index order

	pushed      uint64
	droppedDup  uint64
	droppedOld  uint64
	invalidated uint64
	hoisted     uint64
}

// NewPrefetchQueue creates a queue with the given capacity (paper: 32).
func NewPrefetchQueue(capacity int) *PrefetchQueue {
	if capacity < 1 {
		panic("core: prefetch queue capacity must be >= 1")
	}
	q := &PrefetchQueue{
		entries: make([]queueEntry, capacity),
		idx:     newLineIndex(capacity),
		next:    make([]int32, capacity),
		prev:    make([]int32, capacity),
	}
	q.wHead, q.wTail, q.mHead, q.mTail = -1, -1, -1, -1
	return q
}

// listAppend links slot s at the tail of the list rooted at head/tail.
func (q *PrefetchQueue) listAppend(head, tail *int32, s int32) {
	q.prev[s] = *tail
	q.next[s] = -1
	if *tail >= 0 {
		q.next[*tail] = s
	} else {
		*head = s
	}
	*tail = s
}

// listRemove unlinks slot s from the list rooted at head/tail.
func (q *PrefetchQueue) listRemove(head, tail *int32, s int32) {
	if p := q.prev[s]; p >= 0 {
		q.next[p] = q.next[s]
	} else {
		*head = q.next[s]
	}
	if n := q.next[s]; n >= 0 {
		q.prev[n] = q.prev[s]
	} else {
		*tail = q.prev[s]
	}
}

// markerInsert links slot s into the marker list, keeping it ordered by
// seq. Newly issued entries usually carry a recent seq (LIFO pops the
// newest), so the insertion point is found from the tail.
func (q *PrefetchQueue) markerInsert(s int32) {
	seq := q.entries[s].seq
	// Fast paths: append (seq above the current tail) and prepend (seq
	// below the current head) cover the common LIFO issue patterns.
	if q.mTail < 0 || q.entries[q.mTail].seq < seq {
		q.listAppend(&q.mHead, &q.mTail, s)
		return
	}
	if q.entries[q.mHead].seq > seq {
		q.prev[s] = -1
		q.next[s] = q.mHead
		q.prev[q.mHead] = s
		q.mHead = s
		return
	}
	after := q.mTail
	for after >= 0 && q.entries[after].seq > seq {
		after = q.prev[after]
	}
	if after < 0 {
		q.prev[s] = -1
		q.next[s] = q.mHead
		if q.mHead >= 0 {
			q.prev[q.mHead] = s
		} else {
			q.mTail = s
		}
		q.mHead = s
		return
	}
	q.prev[s] = after
	q.next[s] = q.next[after]
	if q.next[after] >= 0 {
		q.prev[q.next[after]] = s
	} else {
		q.mTail = s
	}
	q.next[after] = s
}

// Push offers a prefetch candidate. It returns true if the candidate was
// accepted as a new waiting entry (or hoisted), false if it was dropped
// as a duplicate.
func (q *PrefetchQueue) Push(l isa.Line) bool {
	q.pushed++
	if slot, ok := q.idx.get(l); ok {
		e := &q.entries[slot]
		if e.state == stateWaiting {
			// Hoist: make it the newest so LIFO issue picks it next.
			q.nextSeq++
			e.seq = q.nextSeq
			q.hoisted++
			q.listRemove(&q.wHead, &q.wTail, slot)
			q.listAppend(&q.wHead, &q.wTail, slot)
			return true
		}
		q.droppedDup++
		return false
	}
	// New entry: unclaimed slot, else reclaim the oldest issued/invalid
	// marker, else drop the oldest waiting prefetch.
	var slot int32
	switch {
	case q.filled < len(q.entries):
		slot = int32(q.filled)
		q.filled++
	case q.mHead >= 0:
		slot = q.mHead
		q.listRemove(&q.mHead, &q.mTail, slot)
		q.idx.del(q.entries[slot].line)
	default:
		q.droppedOld++
		slot = q.wHead
		q.listRemove(&q.wHead, &q.wTail, slot)
		q.idx.del(q.entries[slot].line)
		q.waiting--
	}
	q.nextSeq++
	q.entries[slot] = queueEntry{line: l, state: stateWaiting, seq: q.nextSeq}
	q.idx.set(l, slot)
	q.listAppend(&q.wHead, &q.wTail, slot)
	q.waiting++
	return true
}

// PopNewest removes and returns the newest waiting entry (LIFO issue
// order, the paper's policy). The slot transitions to issued, retaining
// the line as a duplicate-filter marker.
func (q *PrefetchQueue) PopNewest() (isa.Line, bool) {
	return q.popSlot(q.wTail)
}

// PopOldest removes and returns the oldest waiting entry (FIFO issue
// order; the A4 ablation).
func (q *PrefetchQueue) PopOldest() (isa.Line, bool) {
	return q.popSlot(q.wHead)
}

func (q *PrefetchQueue) popSlot(slot int32) (isa.Line, bool) {
	if slot < 0 {
		return 0, false
	}
	q.listRemove(&q.wHead, &q.wTail, slot)
	q.waiting--
	q.entries[slot].state = stateIssued
	q.markerInsert(slot)
	return q.entries[slot].line, true
}

// OnDemandFetch invalidates any waiting entry for line l (the demand
// fetch supersedes the prefetch). It returns true if an entry was
// invalidated.
func (q *PrefetchQueue) OnDemandFetch(l isa.Line) bool {
	slot, ok := q.idx.get(l)
	if !ok || q.entries[slot].state != stateWaiting {
		return false
	}
	q.listRemove(&q.wHead, &q.wTail, slot)
	q.waiting--
	q.entries[slot].state = stateInvalid
	q.invalidated++
	q.markerInsert(slot)
	return true
}

// Waiting returns the number of waiting entries.
func (q *PrefetchQueue) Waiting() int { return q.waiting }

// Capacity returns the queue's slot count.
func (q *PrefetchQueue) Capacity() int { return len(q.entries) }

// DroppedDup returns pushes dropped by the issued/invalidated filter.
func (q *PrefetchQueue) DroppedDup() uint64 { return q.droppedDup }

// DroppedOverflow returns waiting entries displaced by overflow.
func (q *PrefetchQueue) DroppedOverflow() uint64 { return q.droppedOld }

// Invalidated returns entries cancelled by demand fetches.
func (q *PrefetchQueue) Invalidated() uint64 { return q.invalidated }

// Hoisted returns pushes that promoted an existing waiting entry.
func (q *PrefetchQueue) Hoisted() uint64 { return q.hoisted }

// Reset clears all slots and counters.
func (q *PrefetchQueue) Reset() {
	for i := range q.entries {
		q.entries[i] = queueEntry{}
	}
	q.idx.reset()
	q.wHead, q.wTail, q.mHead, q.mTail = -1, -1, -1, -1
	q.waiting = 0
	q.filled = 0
	q.nextSeq = 0
	q.pushed = 0
	q.droppedDup = 0
	q.droppedOld = 0
	q.invalidated = 0
	q.hoisted = 0
}

// RecentList is the paper's filter over the most recent demand fetches
// (Section 4.1): a small ring of line addresses; prefetch candidates
// matching any of them are dropped before reaching the queue.
//
// Contains runs once per prefetch candidate, so instead of scanning the
// ring it consults a line→occurrence-count index maintained by Add (the
// ring may hold the same line several times).
type RecentList struct {
	ring   []isa.Line
	used   int
	head   int
	counts *lineIndex
}

// NewRecentList creates a list tracking the last n demand fetches
// (paper: 32).
func NewRecentList(n int) *RecentList {
	if n < 1 {
		panic("core: recent list size must be >= 1")
	}
	return &RecentList{ring: make([]isa.Line, n), counts: newLineIndex(n)}
}

// Add records a demand fetch, forgetting the oldest one when full.
func (r *RecentList) Add(l isa.Line) {
	if r.used == len(r.ring) {
		r.counts.dec(r.ring[r.head])
	}
	r.ring[r.head] = l
	r.head = (r.head + 1) % len(r.ring)
	if r.used < len(r.ring) {
		r.used++
	}
	r.counts.inc(l)
}

// Contains reports whether l is among the tracked recent fetches.
func (r *RecentList) Contains(l isa.Line) bool {
	_, ok := r.counts.get(l)
	return ok
}

// Reset forgets all history.
func (r *RecentList) Reset() {
	r.used = 0
	r.head = 0
	r.counts.reset()
}
