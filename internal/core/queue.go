// Package core assembles the paper's contribution into a working
// prefetching front-end: prefetch candidates from a prediction engine
// (internal/prefetch) flow through the recent-demand filter and the
// LIFO prefetch queue of Section 4.1, are tag-probed against the L1
// instruction cache, and are installed under either the conventional or
// the L2-bypass policy of Section 7. The front-end also implements the
// oracle miss elimination used by the limits study (Figure 4).
package core

import (
	"repro/internal/isa"
)

// entryState tracks a prefetch-queue slot's lifecycle. The paper keeps
// issued and invalidated entries around in unused slots as a duplicate
// filter; they are reclaimed before any waiting entry is dropped.
type entryState uint8

const (
	stateEmpty entryState = iota
	stateWaiting
	stateIssued
	stateInvalid
)

type queueEntry struct {
	line  isa.Line
	state entryState
	seq   uint64 // insertion order; higher is newer
}

// PrefetchQueue is the paper's per-core prefetch queue (Section 4.1):
//
//   - finite (32 entries), managed last-in first-out so the freshest
//     predictions issue first;
//   - never contains duplicate prefetches: a push matching a waiting
//     entry hoists that entry to the head instead, and a push matching
//     an issued or invalidated entry is dropped;
//   - demand fetches invalidate matching waiting entries;
//   - issued and invalidated entries linger in otherwise-unused slots to
//     extend the duplicate filter, and are reclaimed first on overflow;
//   - when all slots hold waiting prefetches, the oldest waiting entry
//     is dropped to admit the new one.
type PrefetchQueue struct {
	entries []queueEntry
	nextSeq uint64

	pushed      uint64
	droppedDup  uint64
	droppedOld  uint64
	invalidated uint64
	hoisted     uint64
}

// NewPrefetchQueue creates a queue with the given capacity (paper: 32).
func NewPrefetchQueue(capacity int) *PrefetchQueue {
	if capacity < 1 {
		panic("core: prefetch queue capacity must be >= 1")
	}
	return &PrefetchQueue{entries: make([]queueEntry, capacity)}
}

// Push offers a prefetch candidate. It returns true if the candidate was
// accepted as a new waiting entry (or hoisted), false if it was dropped
// as a duplicate.
func (q *PrefetchQueue) Push(l isa.Line) bool {
	q.pushed++
	for i := range q.entries {
		e := &q.entries[i]
		if e.state == stateEmpty || e.line != l {
			continue
		}
		switch e.state {
		case stateWaiting:
			// Hoist: make it the newest so LIFO issue picks it next.
			q.nextSeq++
			e.seq = q.nextSeq
			q.hoisted++
			return true
		case stateIssued, stateInvalid:
			q.droppedDup++
			return false
		}
	}
	// New entry: empty slot, else reclaim oldest issued/invalid marker,
	// else drop the oldest waiting prefetch.
	slot := q.findSlot()
	q.nextSeq++
	q.entries[slot] = queueEntry{line: l, state: stateWaiting, seq: q.nextSeq}
	return true
}

func (q *PrefetchQueue) findSlot() int {
	oldestMarker, oldestWaiting := -1, -1
	var markerSeq, waitingSeq uint64
	for i := range q.entries {
		e := &q.entries[i]
		switch e.state {
		case stateEmpty:
			return i
		case stateIssued, stateInvalid:
			if oldestMarker < 0 || e.seq < markerSeq {
				oldestMarker, markerSeq = i, e.seq
			}
		case stateWaiting:
			if oldestWaiting < 0 || e.seq < waitingSeq {
				oldestWaiting, waitingSeq = i, e.seq
			}
		}
	}
	if oldestMarker >= 0 {
		return oldestMarker
	}
	q.droppedOld++
	return oldestWaiting
}

// PopNewest removes and returns the newest waiting entry (LIFO issue
// order, the paper's policy). The slot transitions to issued, retaining
// the line as a duplicate-filter marker.
func (q *PrefetchQueue) PopNewest() (isa.Line, bool) {
	return q.pop(func(a, b uint64) bool { return a > b })
}

// PopOldest removes and returns the oldest waiting entry (FIFO issue
// order; the A4 ablation).
func (q *PrefetchQueue) PopOldest() (isa.Line, bool) {
	return q.pop(func(a, b uint64) bool { return a < b })
}

func (q *PrefetchQueue) pop(better func(a, b uint64) bool) (isa.Line, bool) {
	best := -1
	var bestSeq uint64
	for i := range q.entries {
		e := &q.entries[i]
		if e.state == stateWaiting && (best < 0 || better(e.seq, bestSeq)) {
			best, bestSeq = i, e.seq
		}
	}
	if best < 0 {
		return 0, false
	}
	q.entries[best].state = stateIssued
	return q.entries[best].line, true
}

// OnDemandFetch invalidates any waiting entry for line l (the demand
// fetch supersedes the prefetch). It returns true if an entry was
// invalidated.
func (q *PrefetchQueue) OnDemandFetch(l isa.Line) bool {
	for i := range q.entries {
		e := &q.entries[i]
		if e.state == stateWaiting && e.line == l {
			e.state = stateInvalid
			q.invalidated++
			return true
		}
	}
	return false
}

// Waiting returns the number of waiting entries.
func (q *PrefetchQueue) Waiting() int {
	n := 0
	for i := range q.entries {
		if q.entries[i].state == stateWaiting {
			n++
		}
	}
	return n
}

// Capacity returns the queue's slot count.
func (q *PrefetchQueue) Capacity() int { return len(q.entries) }

// DroppedDup returns pushes dropped by the issued/invalidated filter.
func (q *PrefetchQueue) DroppedDup() uint64 { return q.droppedDup }

// DroppedOverflow returns waiting entries displaced by overflow.
func (q *PrefetchQueue) DroppedOverflow() uint64 { return q.droppedOld }

// Invalidated returns entries cancelled by demand fetches.
func (q *PrefetchQueue) Invalidated() uint64 { return q.invalidated }

// Hoisted returns pushes that promoted an existing waiting entry.
func (q *PrefetchQueue) Hoisted() uint64 { return q.hoisted }

// Reset clears all slots and counters.
func (q *PrefetchQueue) Reset() {
	for i := range q.entries {
		q.entries[i] = queueEntry{}
	}
	q.nextSeq = 0
	q.pushed = 0
	q.droppedDup = 0
	q.droppedOld = 0
	q.invalidated = 0
	q.hoisted = 0
}

// RecentList is the paper's filter over the most recent demand fetches
// (Section 4.1): a small ring of line addresses; prefetch candidates
// matching any of them are dropped before reaching the queue.
type RecentList struct {
	ring []isa.Line
	used int
	head int
}

// NewRecentList creates a list tracking the last n demand fetches
// (paper: 32).
func NewRecentList(n int) *RecentList {
	if n < 1 {
		panic("core: recent list size must be >= 1")
	}
	return &RecentList{ring: make([]isa.Line, n)}
}

// Add records a demand fetch.
func (r *RecentList) Add(l isa.Line) {
	r.ring[r.head] = l
	r.head = (r.head + 1) % len(r.ring)
	if r.used < len(r.ring) {
		r.used++
	}
}

// Contains reports whether l is among the tracked recent fetches.
func (r *RecentList) Contains(l isa.Line) bool {
	for i := 0; i < r.used; i++ {
		if r.ring[i] == l {
			return true
		}
	}
	return false
}

// Reset forgets all history.
func (r *RecentList) Reset() {
	r.used = 0
	r.head = 0
}
