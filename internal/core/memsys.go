package core

import (
	"repro/internal/cache"
	"repro/internal/codesign"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/stats"
)

// MemSystemConfig describes everything below the L1s: the unified L2 and
// the off-chip link. One MemSystem is shared by all cores of a chip.
type MemSystemConfig struct {
	// L2 geometry (paper default: 2 MB, 4-way, 64 B lines).
	L2 cache.Config
	// L2LatencyCycles is the L2 access latency (paper: 25).
	L2LatencyCycles uint64
	// Port describes DRAM latency and off-chip bandwidth.
	Port memory.PortConfig
	// ModelWritebacks charges off-chip bandwidth for dirty L2 evictions
	// (off by default; the paper's bandwidth figures are read-side).
	ModelWritebacks bool
	// PrefetchInsert selects the recency depth at which prefetch-
	// installed lines enter the L2 (co-design axis; zero value = MRU,
	// the historical behaviour). Demand fills always insert at MRU.
	PrefetchInsert codesign.InsertionPolicy
}

// MemSystem is the shared lower hierarchy: a unified L2 cache, an
// off-chip port, and MSHR-style tracking of lines in flight from memory
// to the L2 so concurrent requesters (other cores, prefetches) coalesce
// onto one transfer. Not safe for concurrent use; the CMP driver
// interleaves cores deterministically.
type MemSystem struct {
	l2         *cache.Cache
	l2Latency  uint64
	port       *memory.Port
	inflight   *memory.InFlight
	writeback  bool
	writebacks uint64
	// prefDepth is PrefetchInsert resolved against the L2 associativity
	// (0 = MRU insert, the historical path).
	prefDepth int
}

// NewMemSystem builds the shared hierarchy.
func NewMemSystem(cfg MemSystemConfig) *MemSystem {
	return &MemSystem{
		l2:        cache.New(cfg.L2),
		l2Latency: cfg.L2LatencyCycles,
		port:      memory.NewPort(cfg.Port),
		inflight:  memory.NewInFlight(0),
		writeback: cfg.ModelWritebacks,
		prefDepth: cfg.PrefetchInsert.DepthFor(cfg.L2.Assoc),
	}
}

// L2 exposes the underlying cache (occupancy diagnostics, tests).
func (m *MemSystem) L2() *cache.Cache { return m.l2 }

// Port exposes the off-chip port (bandwidth diagnostics, tests).
func (m *MemSystem) Port() *memory.Port { return m.port }

// L2Latency returns the configured L2 hit latency.
func (m *MemSystem) L2Latency() uint64 { return m.l2Latency }

// AccessInstr performs a demand instruction-side L2 access for line l at
// cycle now, attributing statistics (and, on an L2 miss, the miss
// category) to cs. It returns the cycle the line is available to the L1.
func (m *MemSystem) AccessInstr(l isa.Line, cat isa.MissCategory, now uint64, cs *stats.CoreStats) uint64 {
	cs.L2I.Accesses++
	if hit, _ := m.l2.Access(l); hit {
		// The line may still be on its way from memory (installed
		// eagerly at request time); wait out the remainder.
		if c, inFl := m.inflight.Lookup(l, now); inFl {
			return c
		}
		return now + m.l2Latency
	}
	cs.L2I.Misses++
	cs.L2IMissBreakdown.Add(cat)
	if c, inFl := m.inflight.Lookup(l, now+m.l2Latency); inFl {
		return c
	}
	complete := m.port.Request(now + m.l2Latency)
	m.inflight.Start(l, complete)
	m.installAt(l, cache.Flags{Inst: true, Used: true}, now)
	return complete
}

// AccessData performs a demand data-side L2 access (an L1-D miss) for
// line l at cycle now. It returns the availability cycle.
func (m *MemSystem) AccessData(l isa.Line, now uint64, cs *stats.CoreStats) uint64 {
	cs.L2D.Accesses++
	if hit, _ := m.l2.Access(l); hit {
		if c, inFl := m.inflight.Lookup(l, now); inFl {
			return c
		}
		return now + m.l2Latency
	}
	cs.L2D.Misses++
	if c, inFl := m.inflight.Lookup(l, now+m.l2Latency); inFl {
		return c
	}
	complete := m.port.Request(now + m.l2Latency)
	m.inflight.Start(l, complete)
	m.installAt(l, cache.Flags{Inst: false, Used: true}, now)
	return complete
}

// WritebackData records a dirty line arriving from an L1-D eviction; the
// L2 copy becomes dirty and will consume off-chip bandwidth when it is
// itself evicted. Lines not present in the L2 write through off-chip.
func (m *MemSystem) WritebackData(l isa.Line, now uint64) {
	if !m.writeback {
		return
	}
	if m.l2.MarkDirty(l) {
		return
	}
	m.writebacks++
	m.port.Request(now)
}

// Writebacks returns off-chip write transfers performed.
func (m *MemSystem) Writebacks() uint64 { return m.writebacks }

// PrefetchInstr performs an instruction prefetch access for line l at
// cycle now. installL2 selects the install policy: conventional
// prefetching installs the fill into the L2 (polluting it); the paper's
// bypass policy does not — the line goes straight to the L1 and only
// enters the L2 later, via InstallProven, if it proves useful.
// It returns the availability cycle and whether the line came from
// off-chip (for bandwidth accounting by callers).
func (m *MemSystem) PrefetchInstr(l isa.Line, now uint64, installL2 bool) (avail uint64, offChip bool) {
	if m.l2.Probe(l) {
		// Present in L2; touch it as a prefetch read (promote, keep
		// flags) and deliver after the L2 latency.
		m.l2.Access(l)
		if c, inFl := m.inflight.Lookup(l, now); inFl {
			return c, false
		}
		return now + m.l2Latency, false
	}
	if c, inFl := m.inflight.Lookup(l, now+m.l2Latency); inFl {
		return c, false
	}
	complete := m.port.Request(now + m.l2Latency)
	m.inflight.Start(l, complete)
	if installL2 {
		m.installAt(l, cache.Flags{Inst: true, Prefetched: true}, now)
	}
	return complete, true
}

// NoteUselessPrefetch records in the L2 that line l's last prefetch
// into an L1 went unused (it was evicted with its prefetch tag still
// set). The usefulness filter consults this to drop re-prefetches.
func (m *MemSystem) NoteUselessPrefetch(l isa.Line) {
	m.l2.SetUselessPrefetch(l, true)
}

// WasUselessPrefetch reports whether line l is marked as a previously
// useless prefetch.
func (m *MemSystem) WasUselessPrefetch(l isa.Line) bool {
	f, ok := m.l2.PeekFlags(l)
	return ok && f.UselessPrefetch
}

// InstallProven installs a proven-useful prefetched line into the L2
// (the bypass policy's eviction-time install). It is a no-op if the
// line is already present.
func (m *MemSystem) InstallProven(l isa.Line) {
	if m.l2.Probe(l) {
		return
	}
	m.install(l, cache.Flags{Inst: true, Used: true})
}

func (m *MemSystem) install(l isa.Line, f cache.Flags) {
	m.installAt(l, f, 0)
}

// installAt fills the L2, charging off-chip bandwidth for a dirty victim
// when write-back modelling is on. Prefetch-tagged fills honour the
// PrefetchInsert depth; demand fills always install at MRU.
func (m *MemSystem) installAt(l isa.Line, f cache.Flags, now uint64) {
	var victim cache.Victim
	var evicted bool
	if m.prefDepth > 0 && f.Prefetched {
		victim, evicted = m.l2.InsertAtDepth(l, f, m.prefDepth)
	} else {
		victim, evicted = m.l2.Insert(l, f)
	}
	if evicted && m.writeback && victim.Flags.Dirty {
		m.writebacks++
		m.port.Request(now)
	}
}

// InstrOccupancy returns the fraction of valid L2 lines holding
// instructions (pollution diagnostics).
func (m *MemSystem) InstrOccupancy() float64 {
	total := m.l2.CountValid()
	if total == 0 {
		return 0
	}
	inst := m.l2.CountValidWhere(func(f cache.Flags) bool { return f.Inst })
	return float64(inst) / float64(total)
}

// Expire lazily drops landed in-flight entries; drivers call it
// periodically to bound memory.
func (m *MemSystem) Expire(now uint64) {
	m.inflight.Expire(now)
}

// Reset clears the L2, the port and in-flight state.
func (m *MemSystem) Reset() {
	m.l2.Reset()
	m.port.Reset()
	m.inflight.Reset()
	m.writebacks = 0
}
