package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/stats"
)

func testMem() *MemSystem {
	return NewMemSystem(MemSystemConfig{
		L2:              cache.Config{SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64},
		L2LatencyCycles: 25,
		Port:            memory.PortConfig{LatencyCycles: 400, BytesPerCycle: 6.4, LineBytes: 64},
	})
}

func TestMemAccessInstrMissThenHit(t *testing.T) {
	m := testMem()
	var cs stats.CoreStats
	avail := m.AccessInstr(100, isa.MissCall, 0, &cs)
	// L2 lookup (25) then memory (400).
	if avail != 425 {
		t.Fatalf("cold access avail = %d, want 425", avail)
	}
	if cs.L2I.Accesses != 1 || cs.L2I.Misses != 1 {
		t.Fatalf("stats = %+v", cs.L2I)
	}
	if cs.L2IMissBreakdown.ByCategory[isa.MissCall] != 1 {
		t.Fatal("miss category not recorded")
	}
	// Second access (long after arrival): L2 hit.
	avail = m.AccessInstr(100, isa.MissCall, 1000, &cs)
	if avail != 1025 {
		t.Fatalf("warm access avail = %d, want 1025", avail)
	}
	if cs.L2I.Misses != 1 {
		t.Fatal("warm access counted as miss")
	}
}

func TestMemInFlightCoalescing(t *testing.T) {
	m := testMem()
	var cs stats.CoreStats
	first := m.AccessInstr(100, isa.MissSequential, 0, &cs)
	// A second demand access while the line is in flight must wait for
	// the same completion, not start a new 400-cycle transfer.
	second := m.AccessInstr(100, isa.MissSequential, 10, &cs)
	if second != first {
		t.Fatalf("coalesced access avail = %d, want %d", second, first)
	}
	if m.Port().Transfers() != 1 {
		t.Fatalf("transfers = %d, want 1", m.Port().Transfers())
	}
}

func TestMemAccessData(t *testing.T) {
	m := testMem()
	var cs stats.CoreStats
	m.AccessData(200, 0, &cs)
	if cs.L2D.Accesses != 1 || cs.L2D.Misses != 1 {
		t.Fatalf("stats = %+v", cs.L2D)
	}
	if f, ok := m.L2().PeekFlags(200); !ok || f.Inst {
		t.Fatal("data line missing or marked as instruction")
	}
	avail := m.AccessData(200, 1000, &cs)
	if avail != 1025 {
		t.Fatalf("warm data access = %d", avail)
	}
}

func TestPrefetchInstrInstallPolicy(t *testing.T) {
	// Conventional: the prefetch installs into L2.
	m := testMem()
	avail, offChip := m.PrefetchInstr(300, 0, true)
	if !offChip || avail != 425 {
		t.Fatalf("prefetch = %d %v", avail, offChip)
	}
	if f, ok := m.L2().PeekFlags(300); !ok || !f.Prefetched || !f.Inst {
		t.Fatalf("conventional prefetch not installed: %+v %v", f, ok)
	}

	// Bypass: no L2 install.
	m2 := testMem()
	m2.PrefetchInstr(300, 0, false)
	if m2.L2().Probe(300) {
		t.Fatal("bypassed prefetch installed into L2")
	}
	// But the transfer is tracked: a demand access coalesces.
	var cs stats.CoreStats
	if got := m2.AccessInstr(300, isa.MissSequential, 10, &cs); got != 425 {
		t.Fatalf("demand after bypassed prefetch = %d, want 425", got)
	}
	if m2.Port().Transfers() != 1 {
		t.Fatalf("transfers = %d", m2.Port().Transfers())
	}
}

func TestPrefetchInstrL2Hit(t *testing.T) {
	m := testMem()
	var cs stats.CoreStats
	m.AccessInstr(400, isa.MissSequential, 0, &cs)
	// Line resident in L2 (and landed): a prefetch costs only L2 latency
	// and no off-chip transfer.
	avail, offChip := m.PrefetchInstr(400, 10000, false)
	if offChip || avail != 10025 {
		t.Fatalf("L2-hit prefetch = %d %v", avail, offChip)
	}
	if m.Port().Transfers() != 1 {
		t.Fatal("prefetch of resident line went off-chip")
	}
}

func TestInstallProven(t *testing.T) {
	m := testMem()
	m.InstallProven(500)
	f, ok := m.L2().PeekFlags(500)
	if !ok || !f.Inst || !f.Used {
		t.Fatalf("proven line = %+v %v", f, ok)
	}
	// Idempotent.
	m.InstallProven(500)
	if m.L2().Inserted() != 1 {
		t.Fatalf("double install: %d inserts", m.L2().Inserted())
	}
}

func TestInstrOccupancy(t *testing.T) {
	m := testMem()
	var cs stats.CoreStats
	if m.InstrOccupancy() != 0 {
		t.Fatal("empty L2 occupancy nonzero")
	}
	m.AccessInstr(1, isa.MissSequential, 0, &cs)
	m.AccessData(2, 0, &cs)
	m.AccessData(3, 0, &cs)
	if got := m.InstrOccupancy(); got < 0.3 || got > 0.35 {
		t.Fatalf("occupancy = %v, want 1/3", got)
	}
}

func TestMemReset(t *testing.T) {
	m := testMem()
	var cs stats.CoreStats
	m.AccessInstr(1, isa.MissSequential, 0, &cs)
	m.Reset()
	if m.L2().CountValid() != 0 || m.Port().Transfers() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestWritebackMemSystem(t *testing.T) {
	m := NewMemSystem(MemSystemConfig{
		L2:              cache.Config{SizeBytes: 512, Assoc: 2, LineBytes: 64}, // tiny: 4 sets x 2
		L2LatencyCycles: 25,
		Port:            memory.PortConfig{LatencyCycles: 400, BytesPerCycle: 6.4, LineBytes: 64},
		ModelWritebacks: true,
	})
	var cs stats.CoreStats
	// Fill a data line and dirty it via writeback from the L1-D.
	m.AccessData(0, 0, &cs)
	m.WritebackData(0, 100)
	if m.Writebacks() != 0 {
		t.Fatalf("in-L2 writeback went off-chip: %d", m.Writebacks())
	}
	f, _ := m.L2().PeekFlags(0)
	if !f.Dirty {
		t.Fatal("L2 line not marked dirty")
	}
	// Evicting the dirty line (set 0 conflict) charges a write transfer.
	before := m.Port().Transfers()
	m.AccessData(4, 1000, &cs)
	m.AccessData(8, 2000, &cs) // set 0 now {4,8}; 0 evicted dirty
	if m.Writebacks() != 1 {
		t.Fatalf("dirty eviction writebacks = %d, want 1", m.Writebacks())
	}
	if m.Port().Transfers() != before+2+1 {
		t.Fatalf("transfers = %d, want fills+writeback", m.Port().Transfers())
	}
	// A writeback of a line absent from the L2 writes through off-chip.
	m.WritebackData(999, 3000)
	if m.Writebacks() != 2 {
		t.Fatalf("write-through writebacks = %d, want 2", m.Writebacks())
	}
	m.Reset()
	if m.Writebacks() != 0 {
		t.Fatal("reset kept writeback count")
	}
}

func TestWritebackDisabledNoTraffic(t *testing.T) {
	m := testMem() // ModelWritebacks off
	m.WritebackData(1, 0)
	if m.Writebacks() != 0 || m.Port().Transfers() != 0 {
		t.Fatal("disabled writeback produced traffic")
	}
}
