package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/prefetch"
	"repro/internal/stats"
)

func testFE(pf prefetch.Prefetcher, bypass bool) (*FrontEnd, *MemSystem, *stats.CoreStats) {
	cfg := DefaultFrontEndConfig()
	cfg.L1I = cache.Config{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64} // tiny: 8 sets x 2
	cfg.BypassL2 = bypass
	mem := testMem()
	cs := &stats.CoreStats{}
	return NewFrontEnd(cfg, pf, mem, cs), mem, cs
}

func TestFetchMissThenHit(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNone(), false)
	avail, missed := fe.FetchLine(10, isa.MissSequential, 0)
	if !missed || avail != 425 {
		t.Fatalf("cold fetch: avail=%d missed=%v", avail, missed)
	}
	avail, missed = fe.FetchLine(10, isa.MissSequential, 1000)
	if missed || avail != 1000 {
		t.Fatalf("warm fetch: avail=%d missed=%v", avail, missed)
	}
	if cs.L1I.Accesses != 2 || cs.L1I.Misses != 1 {
		t.Fatalf("stats = %+v", cs.L1I)
	}
	if cs.L1IMissBreakdown.ByCategory[isa.MissSequential] != 1 {
		t.Fatal("breakdown missing")
	}
}

func TestPrefetchEliminatesMiss(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNextLineOnMiss(), false)
	// Miss on line 10 generates a prefetch of 11, issued immediately.
	fe.FetchLine(10, isa.MissSequential, 0)
	if cs.Prefetch.Issued != 1 {
		t.Fatalf("issued = %d", cs.Prefetch.Issued)
	}
	// Demand fetch of 11 long after the fill landed: hit.
	avail, missed := fe.FetchLine(11, isa.MissSequential, 10000)
	if missed {
		t.Fatal("prefetched line missed")
	}
	if avail != 10000 {
		t.Fatalf("landed prefetch stalled: avail=%d", avail)
	}
	if cs.Prefetch.Useful != 1 {
		t.Fatalf("useful = %d", cs.Prefetch.Useful)
	}
}

func TestLatePrefetchPartialCoverage(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNextLineOnMiss(), false)
	fe.FetchLine(10, isa.MissSequential, 0) // prefetch of 11 issued at 0, lands ~425
	// Demand at cycle 100: line is in flight; wait the remainder, not a
	// fresh full miss.
	avail, missed := fe.FetchLine(11, isa.MissSequential, 100)
	if missed {
		t.Fatal("in-flight prefetched line counted as L1 miss")
	}
	if avail <= 100 || avail > 500 {
		t.Fatalf("late prefetch avail = %d", avail)
	}
	if cs.Prefetch.LatePartial != 1 || cs.Prefetch.Useful != 1 {
		t.Fatalf("stats = %+v", cs.Prefetch)
	}
}

func TestPrefetchTagTriggersTaggedScheme(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNextLineTagged(), false)
	fe.FetchLine(10, isa.MissSequential, 0) // miss -> prefetch 11
	fe.FetchLine(11, isa.MissSequential, 5000)
	// First use of prefetched 11 must trigger prefetch of 12.
	if cs.Prefetch.Issued != 2 {
		t.Fatalf("issued = %d, want 2 (tag-triggered)", cs.Prefetch.Issued)
	}
	_, missed := fe.FetchLine(12, isa.MissSequential, 10000)
	if missed {
		t.Fatal("tag-chain did not cover line 12")
	}
}

func TestRecentFilterDropsCandidates(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNextLineAlways(), false)
	fe.FetchLine(10, isa.MissSequential, 0)
	fe.FetchLine(11, isa.MissSequential, 1000)
	// Fetching 10 again: candidate 11 was recently demand fetched.
	fe.FetchLine(10, isa.MissSequential, 2000)
	if cs.Prefetch.FilteredRecent == 0 {
		t.Fatal("recent filter never fired")
	}
}

func TestBypassPolicyKeepsL2Clean(t *testing.T) {
	fe, mem, cs := testFE(prefetch.NewNextLineOnMiss(), true)
	fe.FetchLine(10, isa.MissSequential, 0) // prefetch 11 issued, bypassing L2
	if mem.L2().Probe(11) {
		t.Fatal("bypassed prefetch installed into L2")
	}
	// Demand line 10 itself IS installed into L2 (demand fills install).
	if !mem.L2().Probe(10) {
		t.Fatal("demand fill missing from L2")
	}
	// Use line 11, then evict it from the tiny L1 by thrashing its set:
	// proven useful, it must now be installed into L2.
	fe.FetchLine(11, isa.MissSequential, 5000)
	set := uint64(11) & 7 // L1 has 8 sets
	thrash := []isa.Line{isa.Line(set + 8*100), isa.Line(set + 8*101), isa.Line(set + 8*102)}
	now := uint64(10000)
	for _, l := range thrash {
		fe.FetchLine(l, isa.MissSequential, now)
		now += 1000
	}
	if !mem.L2().Probe(11) {
		t.Fatal("proven-useful bypassed line not installed into L2 on eviction")
	}
	_ = cs
}

func TestBypassUnusedPrefetchNeverReachesL2(t *testing.T) {
	fe, mem, _ := testFE(prefetch.NewNextLineOnMiss(), true)
	fe.FetchLine(10, isa.MissSequential, 0) // prefetches 11 (never used)
	// Evict 11 by thrashing its set without ever using it.
	set := uint64(11) & 7
	now := uint64(5000)
	for i := 0; i < 4; i++ {
		fe.FetchLine(isa.Line(set+8*uint64(200+i)), isa.MissSequential, now)
		now += 1000
	}
	if mem.L2().Probe(11) {
		t.Fatal("unused bypassed prefetch leaked into L2")
	}
}

func TestConventionalPolicyInstallsPrefetchesIntoL2(t *testing.T) {
	fe, mem, _ := testFE(prefetch.NewNextLineOnMiss(), false)
	fe.FetchLine(10, isa.MissSequential, 0)
	if !mem.L2().Probe(11) {
		t.Fatal("conventional prefetch not installed into L2")
	}
	f, _ := mem.L2().PeekFlags(11)
	if !f.Prefetched || !f.Inst {
		t.Fatalf("L2 flags = %+v", f)
	}
}

func TestOracleEliminatesCategory(t *testing.T) {
	cfg := DefaultFrontEndConfig()
	cfg.L1I = cache.Config{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64}
	cfg.Oracle[isa.SuperBranch] = true
	mem := testMem()
	cs := &stats.CoreStats{}
	fe := NewFrontEnd(cfg, prefetch.NewNone(), mem, cs)

	// Branch-category miss: zero cost, line installed.
	avail, missed := fe.FetchLine(10, isa.MissCondTakenFwd, 0)
	if !missed || avail != 0 {
		t.Fatalf("oracle branch miss: avail=%d missed=%v", avail, missed)
	}
	if _, m2 := fe.FetchLine(10, isa.MissSequential, 1); m2 {
		t.Fatal("oracle-installed line not resident")
	}
	// Sequential miss still costs.
	avail, _ = fe.FetchLine(20, isa.MissSequential, 100)
	if avail <= 100 {
		t.Fatal("non-oracle category eliminated")
	}
	// Misses still counted (they were eliminated, not unseen).
	if cs.L1I.Misses != 2 {
		t.Fatalf("misses = %d", cs.L1I.Misses)
	}
}

func TestDiscontinuityEndToEnd(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewDiscontinuity(prefetch.DefaultDiscontinuityConfig()), false)
	// Teach the predictor: discontinuity 10 -> 1000, target missed.
	_, missed := fe.FetchLine(1000, isa.MissCall, 0)
	fe.NoteDiscontinuity(10, 1000, missed)
	// Later, a trigger at 10 must prefetch 1000 and beyond.
	// First evict 1000 from the tiny L1 by thrashing its set, and fetch
	// enough other lines to push 1000 out of the 32-entry recent-demand
	// filter (a genuinely recent line would rightly not be re-prefetched).
	set := uint64(1000) & 7
	now := uint64(5000)
	for i := 0; i < 40; i++ {
		fe.FetchLine(isa.Line(set+8*uint64(300+i)), isa.MissSequential, now)
		now += 1000
	}
	fe.FetchLine(10, isa.MissSequential, 50000) // triggers table probe
	// The demand fetch of 1000 should now hit (prefetched again).
	_, missed = fe.FetchLine(1000, isa.MissCall, 60000)
	if missed {
		t.Fatal("discontinuity prefetch did not cover the target")
	}
	if cs.Prefetch.Useful == 0 {
		t.Fatal("no useful prefetches recorded")
	}
}

func TestIssueSlotLimit(t *testing.T) {
	cfg := DefaultFrontEndConfig()
	cfg.L1I = cache.Config{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64}
	cfg.IssueSlotsMiss = 1
	cfg.IssueSlotsHit = 0
	mem := testMem()
	cs := &stats.CoreStats{}
	fe := NewFrontEnd(cfg, prefetch.NewNextNTagged(4), mem, cs)
	fe.FetchLine(10, isa.MissSequential, 0) // 4 candidates, 1 slot
	if cs.Prefetch.Issued != 1 {
		t.Fatalf("issued = %d, want 1", cs.Prefetch.Issued)
	}
	if fe.Queue().Waiting() != 3 {
		t.Fatalf("waiting = %d, want 3", fe.Queue().Waiting())
	}
	// A hit grants zero slots: queue stays.
	fe.FetchLine(10, isa.MissSequential, 1000)
	if cs.Prefetch.Issued != 1 {
		t.Fatalf("hit issued prefetches with 0 slots")
	}
}

func TestProbedInCacheDropped(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNextLineOnMiss(), false)
	fe.FetchLine(11, isa.MissSequential, 0)    // 11 resident
	fe.FetchLine(10, isa.MissSequential, 1000) // candidate 11: recent filter may catch it
	fe.FetchLine(50, isa.MissSequential, 2000) // flush recency of 11 out? ring is 32, keep simple:
	// Direct check: candidate for a resident, non-recent line.
	for i := isa.Line(100); i < 132; i++ {
		fe.FetchLine(i, isa.MissSequential, 3000+uint64(i)*500) // push 11 out of recent list
	}
	fe.FetchLine(10, isa.MissSequential, 60000) // candidate 11 again; 11 may have been evicted by now
	_ = cs
	// The counters must be internally consistent: issued + drops == generated.
	p := cs.Prefetch
	if p.Generated != p.FilteredRecent+p.FilteredDup+p.Issued+p.ProbedInCache+uint64(fe.Queue().Waiting())+fe.Queue().DroppedOverflow()+fe.Queue().Invalidated() {
		t.Fatalf("prefetch accounting leak: %+v waiting=%d overflow=%d inval=%d",
			p, fe.Queue().Waiting(), fe.Queue().DroppedOverflow(), fe.Queue().Invalidated())
	}
}

func TestFinalizeCopiesQueueCounters(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNextNTagged(8), false)
	cfgSmallQueue := fe // default queue 32; generate overflow via many misses
	now := uint64(0)
	for i := isa.Line(0); i < 200; i += 16 {
		cfgSmallQueue.FetchLine(i, isa.MissSequential, now)
		now += 10 // barely any issue slots -> queue pressure
	}
	fe.Finalize()
	if cs.Prefetch.DroppedOverflow != fe.Queue().DroppedOverflow() {
		t.Fatal("finalize did not copy overflow count")
	}
	// Baseline reset carves out the measurement window.
	fe.ResetStatsBaseline()
	*cs = stats.CoreStats{}
	fe.Finalize()
	if cs.Prefetch.DroppedOverflow != 0 {
		t.Fatal("baseline not applied")
	}
}

func TestFrontEndReset(t *testing.T) {
	fe, _, _ := testFE(prefetch.NewDiscontinuity(prefetch.DefaultDiscontinuityConfig()), false)
	fe.FetchLine(10, isa.MissSequential, 0)
	fe.NoteDiscontinuity(10, 1000, true)
	fe.Reset()
	if fe.L1().CountValid() != 0 {
		t.Fatal("L1 survived reset")
	}
	d := fe.Prefetcher().(*prefetch.Discontinuity)
	if d.Occupancy() != 0 {
		t.Fatal("predictor survived reset")
	}
}

func TestInFlightVictimCompleted(t *testing.T) {
	// When an in-flight prefetched line is evicted before landing, a
	// re-fetch must not time-travel: it misses and re-requests.
	fe, _, _ := testFE(prefetch.NewNextLineOnMiss(), false)
	fe.FetchLine(3, isa.MissSequential, 0) // prefetch 4 in flight (set 4)
	// Evict line 4 from its set while still in flight.
	set := uint64(4) & 7
	fe.FetchLine(isa.Line(set+8*50), isa.MissSequential, 10)
	fe.FetchLine(isa.Line(set+8*51), isa.MissSequential, 20)
	fe.FetchLine(isa.Line(set+8*52), isa.MissSequential, 30)
	avail, missed := fe.FetchLine(4, isa.MissSequential, 40)
	if !missed {
		t.Fatal("evicted in-flight line hit")
	}
	if avail <= 40 {
		t.Fatal("free refetch of evicted line")
	}
	_ = memory.PortConfig{}
}

func TestL2UsefulnessFilter(t *testing.T) {
	cfg := DefaultFrontEndConfig()
	cfg.L1I = cache.Config{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64}
	cfg.L2UsefulnessFilter = true
	mem := testMem()
	cs := &stats.CoreStats{}
	fe := NewFrontEnd(cfg, prefetch.NewNextLineOnMiss(), mem, cs)

	// Miss on 10 prefetches 11 (conventional install -> line lands in L2
	// with the Prefetched flag). Evict 11 from L1 unused: the L2 entry
	// must be marked useless.
	fe.FetchLine(10, isa.MissSequential, 0)
	set := uint64(11) & 7
	now := uint64(5000)
	for i := 0; i < 4; i++ {
		fe.FetchLine(isa.Line(set+8*uint64(400+i)), isa.MissSequential, now)
		now += 2000
	}
	if !mem.WasUselessPrefetch(11) {
		t.Fatal("unused prefetched victim not marked useless in L2")
	}

	// Evict line 10 (set 2) and push it out of the recent list, then
	// re-trigger the prefetch of 11: the usefulness filter must drop it
	// at issue time.
	set10 := uint64(10) & 7
	for i := 0; i < 40; i++ {
		fe.FetchLine(isa.Line(set10+8*uint64(500+i)), isa.MissSequential, now)
		now += 2000
	}
	issuedBefore := cs.Prefetch.Issued
	uselessBefore := cs.Prefetch.FilteredUseless
	fe.FetchLine(10, isa.MissSequential, now)
	if cs.Prefetch.FilteredUseless == uselessBefore {
		t.Fatalf("useless filter never fired (issued %d -> %d)", issuedBefore, cs.Prefetch.Issued)
	}

	// A demand use of line 11 clears the marker.
	fe.FetchLine(11, isa.MissSequential, now+5000)
	if mem.WasUselessPrefetch(11) {
		t.Fatal("demand use did not clear the useless marker")
	}
}

func TestUselessMarkerSecondChance(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 512, Assoc: 2, LineBytes: 64})
	c.Insert(1, cache.Flags{Inst: true, Prefetched: true})
	c.SetUselessPrefetch(1, true)
	// Demand access clears both Prefetched and UselessPrefetch.
	c.Access(1)
	f, _ := c.PeekFlags(1)
	if f.UselessPrefetch || f.Prefetched || !f.Used {
		t.Fatalf("flags after demand use: %+v", f)
	}
}

// TestResetClearsQueueBaselines is a regression test for a uint64
// underflow: FrontEnd.Reset zeroed the queue's lifetime counters but
// left qBaseHoisted at its pre-reset value, so a Finalize after Reset
// computed Hoisted() - qBaseHoisted on a fresh queue and wrapped to a
// garbage hoist count.
func TestResetClearsQueueBaselines(t *testing.T) {
	fe, _, cs := testFE(prefetch.NewNone(), false)
	q := fe.Queue()

	// Produce nonzero lifetime counters: a hoist (duplicate waiting
	// push), an invalidation (demand fetch of a waiting line), and an
	// overflow (fill the queue past capacity with waiting entries).
	q.Push(100)
	q.Push(100) // hoist
	q.OnDemandFetch(100)
	for i := 0; i <= q.Capacity(); i++ {
		q.Push(isa.Line(1000 + i))
	}
	if q.Hoisted() == 0 || q.Invalidated() == 0 || q.DroppedOverflow() == 0 {
		t.Fatalf("setup failed: hoisted=%d invalidated=%d overflow=%d",
			q.Hoisted(), q.Invalidated(), q.DroppedOverflow())
	}

	// Warm-up ends: baselines capture the current counters. Then the
	// front-end is fully reset and finalized without further activity.
	fe.ResetStatsBaseline()
	fe.Reset()
	fe.Finalize()

	if cs.Prefetch.Hoisted != 0 {
		t.Errorf("hoist count underflowed after Reset: %d", cs.Prefetch.Hoisted)
	}
	if cs.Prefetch.Invalidated != 0 {
		t.Errorf("invalidated count underflowed after Reset: %d", cs.Prefetch.Invalidated)
	}
	if cs.Prefetch.DroppedOverflow != 0 {
		t.Errorf("overflow count underflowed after Reset: %d", cs.Prefetch.DroppedOverflow)
	}
}
