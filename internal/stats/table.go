package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-column text table used by cmd/experiments to
// print paper-style result tables. Cells are strings; the writer pads
// columns to the widest cell.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row. Short rows are padded with empty cells; long
// rows extend the header with empty column names.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	for len(t.Header) < len(cells) {
		t.Header = append(t.Header, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row where every value is formatted with the
// corresponding verb ("%s" for strings, "%.3f" etc. chosen by caller via
// fmt.Sprintf upstream); it simply stringifies with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (no padding), suitable
// for plotting.
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}

// ReadCSV parses a table previously written by CSV: the first record
// becomes the header, the rest become rows. The title is not part of
// the CSV form, so the caller sets it if needed. Tables round-trip:
// ReadCSV(t.CSV(...)) equals t up to the title.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stats: read csv table: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("stats: csv table has no header")
	}
	t := &Table{Header: records[0]}
	for _, rec := range records[1:] {
		t.AddRow(rec...)
	}
	return t, nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown writes the table as a GitHub-flavored markdown table with the
// title as a bold caption line.
func (t *Table) Markdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	writeMDRow(w, t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeMDRow(w, sep)
	for _, row := range t.Rows {
		writeMDRow(w, row)
	}
}

func writeMDRow(w io.Writer, cells []string) {
	escaped := make([]string, len(cells))
	for i, c := range cells {
		escaped[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
}
