// Package stats collects the counters the experiments report: per-level
// miss rates, miss-category breakdowns, prefetch coverage/accuracy and
// cycle accounting. It also contains the table formatter used by
// cmd/experiments to print paper-style result tables.
package stats

import (
	"fmt"
	"repro/internal/isa"
)

// MissBreakdown counts instruction misses by the Figure 3 categories.
type MissBreakdown struct {
	ByCategory [isa.NumMissCategories]uint64
}

// Add records one miss of the given category.
func (m *MissBreakdown) Add(c isa.MissCategory) {
	m.ByCategory[c]++
}

// Total returns the total number of misses.
func (m *MissBreakdown) Total() uint64 {
	var t uint64
	for _, v := range m.ByCategory {
		t += v
	}
	return t
}

// Fraction returns the share of misses in category c, or 0 when there
// are no misses.
func (m *MissBreakdown) Fraction(c isa.MissCategory) float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.ByCategory[c]) / float64(t)
}

// SuperTotals aggregates into the limits-study super-categories.
func (m *MissBreakdown) SuperTotals() [isa.NumSuperCategories]uint64 {
	var out [isa.NumSuperCategories]uint64
	for c, v := range m.ByCategory {
		out[isa.SuperOf(isa.MissCategory(c))] += v
	}
	return out
}

// SuperFraction returns the share of misses in super-category s.
func (m *MissBreakdown) SuperFraction(s isa.SuperCategory) float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.SuperTotals()[s]) / float64(t)
}

// Merge adds other's counts into m.
func (m *MissBreakdown) Merge(other *MissBreakdown) {
	for i, v := range other.ByCategory {
		m.ByCategory[i] += v
	}
}

// CacheStats counts accesses and misses for one cache (or one side —
// instruction vs data — of a unified cache).
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRatio returns misses/accesses, or 0 when there were no accesses.
func (c CacheStats) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// PerInstr returns misses per retired instruction (the paper's metric),
// or 0 when instructions is zero.
func (c CacheStats) PerInstr(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(c.Misses) / float64(instructions)
}

// PrefetchStats counts prefetcher activity for coverage/accuracy
// (Figures 9 and 10).
type PrefetchStats struct {
	// Generated is the number of prefetch candidates the predictor
	// produced, before filtering.
	Generated uint64
	// FilteredRecent were dropped by the recent-demand-fetch filter.
	FilteredRecent uint64
	// FilteredDup were dropped as duplicates of queued/issued entries.
	FilteredDup uint64
	// FilteredUseless were dropped by the L2 usefulness filter (lines
	// whose previous prefetch went unused).
	FilteredUseless uint64
	// DroppedOverflow were pushed out of the finite prefetch queue.
	DroppedOverflow uint64
	// Invalidated were matched by a demand fetch while still queued.
	Invalidated uint64
	// Hoisted candidates matched an already-waiting entry and promoted
	// it instead of enqueueing a duplicate.
	Hoisted uint64
	// ProbedInCache reached the tag probe but the line was already
	// present, so no prefetch was issued.
	ProbedInCache uint64
	// Issued prefetches actually initiated a fill.
	Issued uint64
	// Useful issued prefetches whose line was demand-referenced before
	// eviction.
	Useful uint64
	// LatePartial counts demand fetches that hit a still-in-flight
	// prefetch (coverage gained, but only partial latency hidden).
	LatePartial uint64
	// EvictedUnused counts prefetched L1-I lines evicted before any
	// demand reference — the inaccuracy feedback the prefetch-aware
	// insertion policies act on.
	EvictedUnused uint64
	// ITLBPrefetchFills counts prefetches that installed an I-TLB (or
	// secondary TLB) translation ahead of demand under a
	// prefetch-triggered TLB-fill policy.
	ITLBPrefetchFills uint64
	// WrongPathFetches counts wrong-path line fetches exposed to the
	// prefetch scheme after mispredicted branches (wrong-path
	// modelling axis).
	WrongPathFetches uint64
	// WrongPathFills counts wrong-path lines actually brought into
	// L1-I under the pollute wrong-path mode.
	WrongPathFills uint64
}

// Accuracy returns Useful/Issued, or 0 when nothing was issued.
func (p PrefetchStats) Accuracy() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Useful) / float64(p.Issued)
}

// Merge adds other's counts into p.
func (p *PrefetchStats) Merge(other PrefetchStats) {
	p.Generated += other.Generated
	p.FilteredRecent += other.FilteredRecent
	p.FilteredDup += other.FilteredDup
	p.FilteredUseless += other.FilteredUseless
	p.DroppedOverflow += other.DroppedOverflow
	p.Invalidated += other.Invalidated
	p.Hoisted += other.Hoisted
	p.ProbedInCache += other.ProbedInCache
	p.Issued += other.Issued
	p.Useful += other.Useful
	p.LatePartial += other.LatePartial
	p.EvictedUnused += other.EvictedUnused
	p.ITLBPrefetchFills += other.ITLBPrefetchFills
	p.WrongPathFetches += other.WrongPathFetches
	p.WrongPathFills += other.WrongPathFills
}

// ComponentPrefetchStats attributes a composite (hybrid) prefetcher's
// activity to one of its component schemes. For composite runs the
// Issued/Useful sums across a core's components — including the
// trailing "unattributed" bucket — equal the core's PrefetchStats
// totals exactly.
type ComponentPrefetchStats struct {
	Name string `json:"name"`
	// Generated counts candidates the component proposed; Emitted the
	// ones the arbiter forwarded; Suppressed the ones gated off (the
	// component shadow-trains on them).
	Generated  uint64 `json:"generated"`
	Emitted    uint64 `json:"emitted"`
	Suppressed uint64 `json:"suppressed"`
	// Issued counts forwarded candidates that initiated fills; Useful
	// the issued fills demand-used before eviction; ShadowUseful the
	// suppressed proposals that would have been useful.
	Issued       uint64 `json:"issued"`
	Useful       uint64 `json:"useful"`
	ShadowUseful uint64 `json:"shadow_useful"`
}

// Accuracy returns Useful/Issued, or 0 when nothing was issued.
func (c ComponentPrefetchStats) Accuracy() float64 {
	if c.Issued == 0 {
		return 0
	}
	return float64(c.Useful) / float64(c.Issued)
}

// MergeComponents accumulates src's per-component rows into dst by
// component name, appending names dst has not seen (cores may disagree
// on component sets only in degenerate configurations, but merging by
// name keeps the totals correct regardless of order).
func MergeComponents(dst []ComponentPrefetchStats, src []ComponentPrefetchStats) []ComponentPrefetchStats {
merge:
	for _, s := range src {
		for i := range dst {
			if dst[i].Name == s.Name {
				dst[i].Generated += s.Generated
				dst[i].Emitted += s.Emitted
				dst[i].Suppressed += s.Suppressed
				dst[i].Issued += s.Issued
				dst[i].Useful += s.Useful
				dst[i].ShadowUseful += s.ShadowUseful
				continue merge
			}
		}
		dst = append(dst, s)
	}
	return dst
}

// CoreStats aggregates everything measured for one core in one run.
type CoreStats struct {
	Instructions uint64
	Cycles       uint64

	L1I CacheStats // demand instruction fetches at L1-I
	L1D CacheStats // demand data accesses at L1-D
	L2I CacheStats // instruction-side L2 accesses (L1-I miss path)
	L2D CacheStats // data-side L2 accesses (L1-D miss path)

	L1IMissBreakdown MissBreakdown
	L2IMissBreakdown MissBreakdown

	BranchPredictions uint64
	BranchMispredicts uint64

	Prefetch PrefetchStats

	// Components carries per-component attribution when the core ran a
	// composite (hybrid) prefetcher; empty for single schemes.
	Components []ComponentPrefetchStats

	// Stall-cycle attribution (approximate, for diagnostics).
	FetchStallCycles uint64
	DataStallCycles  uint64
	BpredStallCycles uint64
}

// IPC returns instructions per cycle, or 0 when no cycles elapsed.
func (c *CoreStats) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Merge accumulates other into c (used to total the cores of a CMP).
// Cycles are taken as the max across cores, since the cores run
// concurrently; everything else sums.
func (c *CoreStats) Merge(other *CoreStats) {
	c.Instructions += other.Instructions
	if other.Cycles > c.Cycles {
		c.Cycles = other.Cycles
	}
	c.L1I.Accesses += other.L1I.Accesses
	c.L1I.Misses += other.L1I.Misses
	c.L1D.Accesses += other.L1D.Accesses
	c.L1D.Misses += other.L1D.Misses
	c.L2I.Accesses += other.L2I.Accesses
	c.L2I.Misses += other.L2I.Misses
	c.L2D.Accesses += other.L2D.Accesses
	c.L2D.Misses += other.L2D.Misses
	c.L1IMissBreakdown.Merge(&other.L1IMissBreakdown)
	c.L2IMissBreakdown.Merge(&other.L2IMissBreakdown)
	c.BranchPredictions += other.BranchPredictions
	c.BranchMispredicts += other.BranchMispredicts
	c.Prefetch.Merge(other.Prefetch)
	c.Components = MergeComponents(c.Components, other.Components)
	c.FetchStallCycles += other.FetchStallCycles
	c.DataStallCycles += other.DataStallCycles
	c.BpredStallCycles += other.BpredStallCycles
}

// Pct formats a fraction as a percentage string with the given decimals.
func Pct(f float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, f*100)
}
