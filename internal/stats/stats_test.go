package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestMissBreakdownTotals(t *testing.T) {
	var m MissBreakdown
	m.Add(isa.MissSequential)
	m.Add(isa.MissSequential)
	m.Add(isa.MissCall)
	m.Add(isa.MissCondTakenFwd)
	if got := m.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	if f := m.Fraction(isa.MissSequential); f != 0.5 {
		t.Fatalf("Fraction(seq) = %v, want 0.5", f)
	}
	st := m.SuperTotals()
	if st[isa.SuperSequential] != 2 || st[isa.SuperBranch] != 1 || st[isa.SuperFunction] != 1 || st[isa.SuperTrap] != 0 {
		t.Fatalf("SuperTotals = %v", st)
	}
	if f := m.SuperFraction(isa.SuperBranch); f != 0.25 {
		t.Fatalf("SuperFraction(branch) = %v", f)
	}
}

func TestMissBreakdownEmpty(t *testing.T) {
	var m MissBreakdown
	if m.Fraction(isa.MissCall) != 0 || m.SuperFraction(isa.SuperBranch) != 0 {
		t.Fatal("empty breakdown must report zero fractions, not NaN")
	}
}

func TestMissBreakdownMerge(t *testing.T) {
	var a, b MissBreakdown
	a.Add(isa.MissCall)
	b.Add(isa.MissCall)
	b.Add(isa.MissTrap)
	a.Merge(&b)
	if a.ByCategory[isa.MissCall] != 2 || a.ByCategory[isa.MissTrap] != 1 {
		t.Fatalf("merge wrong: %v", a.ByCategory)
	}
}

func TestCacheStats(t *testing.T) {
	c := CacheStats{Accesses: 200, Misses: 30}
	if got := c.MissRatio(); got != 0.15 {
		t.Fatalf("MissRatio = %v", got)
	}
	if got := c.PerInstr(1000); got != 0.03 {
		t.Fatalf("PerInstr = %v", got)
	}
	var zero CacheStats
	if zero.MissRatio() != 0 || zero.PerInstr(0) != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}

func TestPrefetchAccuracy(t *testing.T) {
	p := PrefetchStats{Issued: 100, Useful: 40}
	if p.Accuracy() != 0.4 {
		t.Fatalf("Accuracy = %v", p.Accuracy())
	}
	var zero PrefetchStats
	if zero.Accuracy() != 0 {
		t.Fatal("zero prefetch stats must report 0 accuracy")
	}
}

func TestPrefetchMerge(t *testing.T) {
	a := PrefetchStats{Generated: 1, Issued: 2, Useful: 1, FilteredRecent: 3}
	b := PrefetchStats{Generated: 10, Issued: 20, Useful: 5, DroppedOverflow: 7, LatePartial: 2}
	a.Merge(b)
	if a.Generated != 11 || a.Issued != 22 || a.Useful != 6 || a.FilteredRecent != 3 || a.DroppedOverflow != 7 || a.LatePartial != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestCoreStatsIPCAndMerge(t *testing.T) {
	a := &CoreStats{Instructions: 1000, Cycles: 500}
	if a.IPC() != 2 {
		t.Fatalf("IPC = %v", a.IPC())
	}
	b := &CoreStats{Instructions: 1000, Cycles: 800}
	b.L1I = CacheStats{Accesses: 10, Misses: 2}
	a.Merge(b)
	if a.Instructions != 2000 {
		t.Fatalf("merged instructions = %d", a.Instructions)
	}
	if a.Cycles != 800 {
		t.Fatalf("merged cycles = %d, want max(500,800)", a.Cycles)
	}
	if a.L1I.Misses != 2 {
		t.Fatalf("merged L1I misses = %d", a.L1I.Misses)
	}
	var zero CoreStats
	if zero.IPC() != 0 {
		t.Fatal("zero CoreStats IPC should be 0")
	}
}

// Property: Total equals the sum over categories and fractions sum to ~1
// when nonempty.
func TestBreakdownFractionProperty(t *testing.T) {
	f := func(counts [isa.NumMissCategories]uint8) bool {
		var m MissBreakdown
		var total uint64
		for c, n := range counts {
			for i := uint8(0); i < n; i++ {
				m.Add(isa.MissCategory(c))
			}
			total += uint64(n)
		}
		if m.Total() != total {
			return false
		}
		if total == 0 {
			return true
		}
		sum := 0.0
		for c := 0; c < isa.NumMissCategories; c++ {
			sum += m.Fraction(isa.MissCategory(c))
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "app", "rate")
	tb.AddRow("DB", "2.31%")
	tb.AddRow("jApp", "3.10%")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "app") || !strings.Contains(out, "jApp") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1", "2", "3") // longer than header
	tb.AddRow("x")           // shorter than (now extended) header
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extended column lost:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "name", "val", "n")
	tb.AddRowf("x", 0.123456, 42)
	out := tb.String()
	if !strings.Contains(out, "0.1235") {
		t.Fatalf("float not formatted to 4 places:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("int missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", "z\"q")
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "\"x,y\"") {
		t.Fatalf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, "\"z\"\"q\"") {
		t.Fatalf("quote cell not escaped: %q", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.1234, 2); got != "12.34%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "100%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("cap", "a", "b")
	tb.AddRow("x|y", "2")
	var sb strings.Builder
	tb.Markdown(&sb)
	out := sb.String()
	if !strings.Contains(out, "**cap**") {
		t.Fatalf("missing caption: %s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("missing separator: %s", out)
	}
	if !strings.Contains(out, "x\\|y") {
		t.Fatalf("pipe not escaped: %s", out)
	}
}
