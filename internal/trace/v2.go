package trace

// The IPFTRC02 container wraps the v1 record encoding in framed chunks
// so large corpora are compact, verifiable, and decodable in parallel:
//
//	container: header | chunk* | index | footer
//	header:    magic "IPFTRC02" | name len varint | name | asid varint
//	chunk:     0x01 | startNext varint | records varint | instrs varint
//	           | rawLen varint | compLen varint | crc32(payload) u32le
//	           | payload (flate of `records` v1-style records, deltas
//	              seeded from startNext so chunks decode independently)
//	index:     0x00 | numChunks varint | per chunk:
//	           offset varint | records varint | instrs varint
//	           | startNext varint | compLen varint
//	footer:    index offset u64le | crc32(index) u32le | "IPFTEND2"
//
// The trailing index plus fixed-size footer give O(1) seek-to-chunk via
// IndexedReader; per-chunk CRCs catch corruption chunk-by-chunk; and a
// container cut anywhere before the footer is detected as truncation
// (io.ErrUnexpectedEOF), never silently read as a shorter trace.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/isa"
)

const (
	magicV2    = "IPFTRC02"
	footMagic  = "IPFTEND2"
	frameChunk = 0x01
	frameIndex = 0x00

	// footerSize is the fixed tail: index offset, index CRC, end magic.
	footerSize = 8 + 4 + 8

	// DefaultChunkRecords is the records-per-chunk used when callers
	// pass 0: big enough to compress well, small enough that a sharded
	// decode has parallelism on even short traces.
	DefaultChunkRecords = 4096

	maxChunkRecords = 1 << 22
	maxChunkBytes   = 1 << 28
	maxChunks       = 1 << 24
)

// ErrCorrupt tags integrity failures (checksum mismatches, count or
// index disagreements) as opposed to plain truncation.
var ErrCorrupt = errors.New("corrupt container")

// ChunkInfo is one chunk-index entry.
type ChunkInfo struct {
	// Offset is the absolute container offset of the chunk frame.
	Offset int64
	// Records and Instrs count the blocks and instructions within.
	Records uint64
	Instrs  uint64
	// StartNext is the delta base: the NextPC of the last block before
	// this chunk (0 for the first), letting the chunk decode alone.
	StartNext isa.Addr
	// CompLen is the compressed payload length in bytes.
	CompLen int
}

// WriterV2 encodes a block stream into an IPFTRC02 container. Close is
// mandatory: it flushes the final partial chunk and writes the index
// and footer, without which the container is (detectably) truncated.
type WriterV2 struct {
	w            io.Writer
	off          int64
	chunkRecords int

	prevNext  isa.Addr
	chunkBase isa.Addr
	recBuf    bytes.Buffer
	scratch   []byte

	recs      uint64
	instrs    uint64
	blocks    uint64
	totInstrs uint64
	index     []ChunkInfo

	comp    *flate.Writer
	compBuf bytes.Buffer
	closed  bool
}

// NewWriterV2 writes the container header for the given workload name
// and address-space id. chunkRecords is the number of blocks per chunk
// (0 = DefaultChunkRecords).
func NewWriterV2(w io.Writer, name string, asid uint64, chunkRecords int) (*WriterV2, error) {
	if chunkRecords <= 0 {
		chunkRecords = DefaultChunkRecords
	}
	if chunkRecords > maxChunkRecords {
		return nil, fmt.Errorf("trace: chunk size %d exceeds limit %d", chunkRecords, maxChunkRecords)
	}
	scratch := make([]byte, binary.MaxVarintLen64)
	var hdr bytes.Buffer
	hdr.WriteString(magicV2)
	putUvarint(&hdr, scratch, uint64(len(name)))
	hdr.WriteString(name)
	putUvarint(&hdr, scratch, asid)
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return nil, err
	}
	comp, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	return &WriterV2{
		w:            w,
		off:          int64(hdr.Len()),
		chunkRecords: chunkRecords,
		scratch:      scratch,
		comp:         comp,
	}, nil
}

// Write appends one block.
func (t *WriterV2) Write(b *isa.Block) error {
	if t.closed {
		return errors.New("trace: write after Close")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	t.prevNext = encodeRecord(&t.recBuf, t.scratch, t.prevNext, b)
	t.recs++
	t.instrs += uint64(b.NumInstrs)
	t.blocks++
	t.totInstrs += uint64(b.NumInstrs)
	if t.recs >= uint64(t.chunkRecords) {
		return t.flushChunk()
	}
	return nil
}

// Blocks returns the number of blocks written.
func (t *WriterV2) Blocks() uint64 { return t.blocks }

// Instructions returns the number of instructions written.
func (t *WriterV2) Instructions() uint64 { return t.totInstrs }

// flushChunk compresses and frames the buffered records.
func (t *WriterV2) flushChunk() error {
	if t.recs == 0 {
		return nil
	}
	t.compBuf.Reset()
	t.comp.Reset(&t.compBuf)
	if _, err := t.comp.Write(t.recBuf.Bytes()); err != nil {
		return err
	}
	if err := t.comp.Close(); err != nil {
		return err
	}
	comp := t.compBuf.Bytes()
	var hdr bytes.Buffer
	hdr.WriteByte(frameChunk)
	putUvarint(&hdr, t.scratch, uint64(t.chunkBase))
	putUvarint(&hdr, t.scratch, t.recs)
	putUvarint(&hdr, t.scratch, t.instrs)
	putUvarint(&hdr, t.scratch, uint64(t.recBuf.Len()))
	putUvarint(&hdr, t.scratch, uint64(len(comp)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(comp))
	hdr.Write(crc[:])
	if _, err := t.w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := t.w.Write(comp); err != nil {
		return err
	}
	t.index = append(t.index, ChunkInfo{
		Offset:    t.off,
		Records:   t.recs,
		Instrs:    t.instrs,
		StartNext: t.chunkBase,
		CompLen:   len(comp),
	})
	t.off += int64(hdr.Len()) + int64(len(comp))
	t.recBuf.Reset()
	t.recs, t.instrs = 0, 0
	t.chunkBase = t.prevNext
	return nil
}

// Close flushes the final chunk and writes the chunk index and footer.
func (t *WriterV2) Close() error {
	if t.closed {
		return nil
	}
	if err := t.flushChunk(); err != nil {
		return err
	}
	t.closed = true
	var idx bytes.Buffer
	idx.WriteByte(frameIndex)
	putUvarint(&idx, t.scratch, uint64(len(t.index)))
	for _, c := range t.index {
		putUvarint(&idx, t.scratch, uint64(c.Offset))
		putUvarint(&idx, t.scratch, c.Records)
		putUvarint(&idx, t.scratch, c.Instrs)
		putUvarint(&idx, t.scratch, uint64(c.StartNext))
		putUvarint(&idx, t.scratch, uint64(c.CompLen))
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(t.off))
	binary.LittleEndian.PutUint32(foot[8:12], crc32.ChecksumIEEE(idx.Bytes()))
	copy(foot[12:], footMagic)
	if _, err := t.w.Write(idx.Bytes()); err != nil {
		return err
	}
	_, err := t.w.Write(foot[:])
	return err
}

// RecordV2 captures n blocks from src into w as an IPFTRC02 container.
func RecordV2(w io.Writer, name string, asid uint64, src interface{ Next(*isa.Block) }, n uint64, chunkRecords int) error {
	return RecordV2Context(context.Background(), w, name, asid, src, n, chunkRecords)
}

// RecordV2Context is RecordV2 with cooperative cancellation. On
// cancellation the container is still finalised (index + footer), so
// the output is a valid, shorter trace of the blocks captured so far.
func RecordV2Context(ctx context.Context, w io.Writer, name string, asid uint64, src interface{ Next(*isa.Block) }, n uint64, chunkRecords int) error {
	tw, err := NewWriterV2(w, name, asid, chunkRecords)
	if err != nil {
		return err
	}
	var b isa.Block
	for i := uint64(0); i < n; i++ {
		if i%ctxPollBlocks == 0 {
			if err := ctx.Err(); err != nil {
				tw.Close()
				return err
			}
		}
		src.Next(&b)
		if err := tw.Write(&b); err != nil {
			return err
		}
	}
	return tw.Close()
}

// inflate decompresses comp into a buffer of exactly rawLen bytes
// (reusing dst's capacity), rejecting payloads that are shorter or
// longer than declared.
func inflate(comp []byte, rawLen int, dst []byte) ([]byte, error) {
	if cap(dst) < rawLen {
		dst = make([]byte, rawLen)
	} else {
		dst = dst[:rawLen]
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	if _, err := io.ReadFull(fr, dst); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return dst, fmt.Errorf("payload shorter than declared %d bytes: %w", rawLen, ErrCorrupt)
		}
		return dst, fmt.Errorf("decompress: %w", err)
	}
	var one [1]byte
	if n, err := fr.Read(one[:]); n != 0 || err != io.EOF {
		return dst, fmt.Errorf("payload longer than declared %d bytes: %w", rawLen, ErrCorrupt)
	}
	return dst, nil
}

// crcReader tees everything read through it into a running CRC32, so
// the streaming reader can checksum the index as it parses it.
type crcReader struct {
	r   recordReader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// readV2 is Read for v2 containers: it streams chunk frames, verifying
// each CRC and count inline, and finishes by checking the index and
// footer so a truncated container can never end in a clean io.EOF.
func (t *Reader) readV2(b *isa.Block) error {
	for t.remRecs == 0 {
		if t.done {
			return io.EOF
		}
		if err := t.nextFrame(); err != nil {
			return err
		}
	}
	if err := readRecord(&t.cur, &t.prevNext, t.blocks, b); err != nil {
		if err == io.EOF {
			err = fmt.Errorf("block %d truncated: %w", t.blocks, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("trace: chunk %d: %w", t.chunk, err)
	}
	t.remRecs--
	t.blocks++
	t.chunkInstrs += uint64(b.NumInstrs)
	if t.remRecs == 0 {
		if t.cur.Len() != 0 {
			return fmt.Errorf("trace: chunk %d: %d trailing payload bytes: %w", t.chunk, t.cur.Len(), ErrCorrupt)
		}
		if t.chunkInstrs != t.wantInstrs {
			return fmt.Errorf("trace: chunk %d: instruction count mismatch (header %d, decoded %d): %w",
				t.chunk, t.wantInstrs, t.chunkInstrs, ErrCorrupt)
		}
	}
	return nil
}

// nextFrame advances to the next chunk or, at the index frame,
// verifies the container tail and marks the stream done.
func (t *Reader) nextFrame() error {
	frameOff := t.r.n
	typ, err := t.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("trace: container truncated before chunk index (%d chunks read): %w",
				len(t.seen), io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("trace: reading frame: %w", err)
	}
	switch typ {
	case frameChunk:
		return t.readChunkFrame(frameOff)
	case frameIndex:
		if err := t.readIndexAndFooter(frameOff); err != nil {
			return err
		}
		t.done = true
		return nil
	default:
		return fmt.Errorf("trace: unknown frame type 0x%02x at offset %d: %w", typ, frameOff, ErrCorrupt)
	}
}

// readChunkFrame parses, checks and decompresses one chunk frame.
func (t *Reader) readChunkFrame(off int64) error {
	i := len(t.seen)
	fail := func(err error) error {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: chunk %d truncated: %w", i, err)
	}
	var fields [5]uint64
	for f := range fields {
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			return fail(err)
		}
		fields[f] = v
	}
	base, recs, instrs, rawLen, compLen := fields[0], fields[1], fields[2], fields[3], fields[4]
	if recs == 0 || recs > maxChunkRecords {
		return fmt.Errorf("trace: chunk %d: implausible record count %d: %w", i, recs, ErrCorrupt)
	}
	if rawLen == 0 || rawLen > maxChunkBytes || compLen == 0 || compLen > maxChunkBytes {
		return fmt.Errorf("trace: chunk %d: implausible payload size (raw %d, compressed %d): %w",
			i, rawLen, compLen, ErrCorrupt)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(t.r, crcb[:]); err != nil {
		return fail(err)
	}
	want := binary.LittleEndian.Uint32(crcb[:])
	if cap(t.compBuf) < int(compLen) {
		t.compBuf = make([]byte, compLen)
	} else {
		t.compBuf = t.compBuf[:compLen]
	}
	if _, err := io.ReadFull(t.r, t.compBuf); err != nil {
		return fail(err)
	}
	if got := crc32.ChecksumIEEE(t.compBuf); got != want {
		return fmt.Errorf("trace: chunk %d: checksum mismatch (stored %08x, computed %08x): %w",
			i, want, got, ErrCorrupt)
	}
	raw, err := inflate(t.compBuf, int(rawLen), t.rawBuf)
	t.rawBuf = raw
	if err != nil {
		return fmt.Errorf("trace: chunk %d: %w", i, err)
	}
	t.cur.Reset(raw)
	t.remRecs = recs
	t.wantInstrs = instrs
	t.chunkInstrs = 0
	t.prevNext = isa.Addr(base)
	t.chunk = i
	t.seen = append(t.seen, ChunkInfo{
		Offset:    off,
		Records:   recs,
		Instrs:    instrs,
		StartNext: isa.Addr(base),
		CompLen:   int(compLen),
	})
	return nil
}

// readIndexAndFooter parses the trailing index, cross-checking every
// entry against the chunks actually streamed past, then verifies the
// footer and that nothing follows it.
func (t *Reader) readIndexAndFooter(off int64) error {
	cr := &crcReader{r: t.r, crc: crc32.Update(0, crc32.IEEETable, []byte{frameIndex})}
	fail := func(err error) error {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: chunk index truncated: %w", err)
	}
	n, err := binary.ReadUvarint(cr)
	if err != nil {
		return fail(err)
	}
	if n > maxChunks {
		return fmt.Errorf("trace: chunk index: implausible chunk count %d: %w", n, ErrCorrupt)
	}
	if int(n) != len(t.seen) {
		return fmt.Errorf("trace: chunk index lists %d chunks but container holds %d: %w",
			n, len(t.seen), ErrCorrupt)
	}
	for i := 0; i < int(n); i++ {
		var fields [5]uint64
		for f := range fields {
			v, err := binary.ReadUvarint(cr)
			if err != nil {
				return fail(err)
			}
			fields[f] = v
		}
		e := ChunkInfo{
			Offset:    int64(fields[0]),
			Records:   fields[1],
			Instrs:    fields[2],
			StartNext: isa.Addr(fields[3]),
			CompLen:   int(fields[4]),
		}
		if e != t.seen[i] {
			return fmt.Errorf("trace: chunk %d: index entry disagrees with chunk frame: %w", i, ErrCorrupt)
		}
	}
	var foot [footerSize]byte
	if _, err := io.ReadFull(t.r, foot[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("trace: footer truncated: %w", io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("trace: reading footer: %w", err)
	}
	if string(foot[12:]) != footMagic {
		return fmt.Errorf("trace: footer: bad end magic: %w", ErrCorrupt)
	}
	if got := int64(binary.LittleEndian.Uint64(foot[0:8])); got != off {
		return fmt.Errorf("trace: footer index offset %d does not match index at %d: %w", got, off, ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(foot[8:12]); got != cr.crc {
		return fmt.Errorf("trace: chunk index checksum mismatch (stored %08x, computed %08x): %w",
			got, cr.crc, ErrCorrupt)
	}
	if _, err := t.r.ReadByte(); err == nil {
		return fmt.Errorf("trace: trailing data after footer: %w", ErrCorrupt)
	} else if err != io.EOF {
		return fmt.Errorf("trace: reading past footer: %w", err)
	}
	return nil
}

// IndexedReader provides random access over an IPFTRC02 container via
// its chunk index: O(1) Seek to any chunk and an independent, goroutine-
// safe DecodeChunk for parallel sharded decoding. Seek and Read share a
// cursor and are not safe for concurrent use; DecodeChunk is.
type IndexedReader struct {
	ra     io.ReaderAt
	size   int64
	name   string
	asid   uint64
	chunks []ChunkInfo
	blocks uint64
	instrs uint64

	cur    []isa.Block
	curIdx int
	pos    int
}

// OpenIndexed parses the footer, index and header of a v2 container.
// Truncated containers fail with io.ErrUnexpectedEOF; corrupted ones
// with ErrCorrupt.
func OpenIndexed(ra io.ReaderAt, size int64) (*IndexedReader, error) {
	if size < int64(len(magicV2))+footerSize {
		return nil, fmt.Errorf("trace: container too short (%d bytes): %w", size, io.ErrUnexpectedEOF)
	}
	var foot [footerSize]byte
	if _, err := ra.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, fmt.Errorf("trace: reading footer: %w", err)
	}
	if string(foot[12:]) != footMagic {
		var head [8]byte
		ra.ReadAt(head[:], 0)
		switch string(head[:]) {
		case magicV2:
			return nil, fmt.Errorf("trace: container truncated: footer missing: %w", io.ErrUnexpectedEOF)
		case magic:
			return nil, errors.New("trace: v1 trace has no chunk index (stream it with NewReader)")
		}
		return nil, ErrBadMagic
	}
	idxOff := int64(binary.LittleEndian.Uint64(foot[0:8]))
	if idxOff < int64(len(magicV2)) || idxOff > size-footerSize-1 {
		return nil, fmt.Errorf("trace: footer index offset %d outside container: %w", idxOff, ErrCorrupt)
	}
	idxBytes := make([]byte, size-footerSize-idxOff)
	if _, err := ra.ReadAt(idxBytes, idxOff); err != nil {
		return nil, fmt.Errorf("trace: reading chunk index: %w", err)
	}
	if got := crc32.ChecksumIEEE(idxBytes); got != binary.LittleEndian.Uint32(foot[8:12]) {
		return nil, fmt.Errorf("trace: chunk index checksum mismatch: %w", ErrCorrupt)
	}
	ir := &IndexedReader{ra: ra, size: size}
	if err := ir.parseIndex(idxBytes, idxOff); err != nil {
		return nil, err
	}
	if err := ir.parseHeader(); err != nil {
		return nil, err
	}
	return ir, nil
}

func (ir *IndexedReader) parseIndex(idxBytes []byte, idxOff int64) error {
	rd := bytes.NewReader(idxBytes)
	if typ, err := rd.ReadByte(); err != nil || typ != frameIndex {
		return fmt.Errorf("trace: chunk index frame malformed: %w", ErrCorrupt)
	}
	n, err := binary.ReadUvarint(rd)
	if err != nil || n > maxChunks {
		return fmt.Errorf("trace: chunk index malformed: %w", ErrCorrupt)
	}
	prevEnd := int64(len(magicV2))
	for i := 0; i < int(n); i++ {
		var fields [5]uint64
		for f := range fields {
			v, err := binary.ReadUvarint(rd)
			if err != nil {
				return fmt.Errorf("trace: chunk index entry %d malformed: %w", i, ErrCorrupt)
			}
			fields[f] = v
		}
		e := ChunkInfo{
			Offset:    int64(fields[0]),
			Records:   fields[1],
			Instrs:    fields[2],
			StartNext: isa.Addr(fields[3]),
			CompLen:   int(fields[4]),
		}
		if e.Records == 0 || e.Records > maxChunkRecords || e.CompLen <= 0 || e.CompLen > maxChunkBytes {
			return fmt.Errorf("trace: chunk %d: implausible index entry: %w", i, ErrCorrupt)
		}
		if e.Offset < prevEnd || e.Offset+int64(e.CompLen) >= idxOff {
			return fmt.Errorf("trace: chunk %d: index offset %d outside container: %w", i, e.Offset, ErrCorrupt)
		}
		prevEnd = e.Offset + int64(e.CompLen)
		ir.chunks = append(ir.chunks, e)
		ir.blocks += e.Records
		ir.instrs += e.Instrs
	}
	if rd.Len() != 0 {
		return fmt.Errorf("trace: %d trailing bytes after chunk index: %w", rd.Len(), ErrCorrupt)
	}
	return nil
}

func (ir *IndexedReader) parseHeader() error {
	hr := bufio.NewReader(io.NewSectionReader(ir.ra, 0, ir.size))
	head := make([]byte, len(magicV2))
	if _, err := io.ReadFull(hr, head); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magicV2 {
		return ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(hr)
	if err != nil || nameLen > 1<<16 {
		return fmt.Errorf("trace: header malformed: %w", ErrCorrupt)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(hr, nameBuf); err != nil {
		return fmt.Errorf("trace: reading name: %w", err)
	}
	ir.name = string(nameBuf)
	if ir.asid, err = binary.ReadUvarint(hr); err != nil {
		return fmt.Errorf("trace: reading asid: %w", err)
	}
	return nil
}

// Name returns the workload name recorded in the header.
func (ir *IndexedReader) Name() string { return ir.name }

// ASID returns the address-space id recorded in the header.
func (ir *IndexedReader) ASID() uint64 { return ir.asid }

// NumChunks returns the number of chunks in the container.
func (ir *IndexedReader) NumChunks() int { return len(ir.chunks) }

// Blocks returns the total block count from the index.
func (ir *IndexedReader) Blocks() uint64 { return ir.blocks }

// Instructions returns the total instruction count from the index.
func (ir *IndexedReader) Instructions() uint64 { return ir.instrs }

// Chunks returns a copy of the chunk index.
func (ir *IndexedReader) Chunks() []ChunkInfo { return append([]ChunkInfo(nil), ir.chunks...) }

// DecodeChunk decodes chunk i into freshly-allocated blocks after
// verifying its CRC and counts against the index. It touches no shared
// cursor state, so concurrent calls (sharded parallel decode, the
// replay prefetcher) are safe.
func (ir *IndexedReader) DecodeChunk(i int) ([]isa.Block, error) {
	if i < 0 || i >= len(ir.chunks) {
		return nil, fmt.Errorf("trace: chunk %d out of range [0,%d)", i, len(ir.chunks))
	}
	c := ir.chunks[i]
	maxHdr := int64(1 + 5*binary.MaxVarintLen64 + 4)
	end := c.Offset + maxHdr + int64(c.CompLen)
	if end > ir.size {
		end = ir.size
	}
	buf := make([]byte, end-c.Offset)
	if _, err := io.ReadFull(io.NewSectionReader(ir.ra, c.Offset, int64(len(buf))), buf); err != nil {
		return nil, fmt.Errorf("trace: chunk %d: reading frame: %w", i, err)
	}
	rd := bytes.NewReader(buf)
	typ, _ := rd.ReadByte()
	if typ != frameChunk {
		return nil, fmt.Errorf("trace: chunk %d: index points at frame type 0x%02x: %w", i, typ, ErrCorrupt)
	}
	var fields [5]uint64
	for f := range fields {
		v, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("trace: chunk %d: frame header malformed: %w", i, ErrCorrupt)
		}
		fields[f] = v
	}
	base, recs, instrs, rawLen, compLen := fields[0], fields[1], fields[2], fields[3], fields[4]
	if isa.Addr(base) != c.StartNext || recs != c.Records || instrs != c.Instrs || int(compLen) != c.CompLen {
		return nil, fmt.Errorf("trace: chunk %d: frame header disagrees with index: %w", i, ErrCorrupt)
	}
	if rawLen == 0 || rawLen > maxChunkBytes {
		return nil, fmt.Errorf("trace: chunk %d: implausible payload size %d: %w", i, rawLen, ErrCorrupt)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(rd, crcb[:]); err != nil {
		return nil, fmt.Errorf("trace: chunk %d truncated: %w", i, io.ErrUnexpectedEOF)
	}
	if rd.Len() < int(compLen) {
		return nil, fmt.Errorf("trace: chunk %d truncated: %w", i, io.ErrUnexpectedEOF)
	}
	comp := buf[len(buf)-rd.Len():][:compLen]
	if got := crc32.ChecksumIEEE(comp); got != binary.LittleEndian.Uint32(crcb[:]) {
		return nil, fmt.Errorf("trace: chunk %d: checksum mismatch (stored %08x, computed %08x): %w",
			i, binary.LittleEndian.Uint32(crcb[:]), got, ErrCorrupt)
	}
	raw, err := inflate(comp, int(rawLen), nil)
	if err != nil {
		return nil, fmt.Errorf("trace: chunk %d: %w", i, err)
	}
	rr := bytes.NewReader(raw)
	blocks := make([]isa.Block, 0, recs)
	prevNext := isa.Addr(base)
	var sumInstrs uint64
	for k := uint64(0); k < recs; k++ {
		var b isa.Block
		if err := readRecord(rr, &prevNext, k, &b); err != nil {
			if err == io.EOF {
				err = fmt.Errorf("block %d truncated: %w", k, io.ErrUnexpectedEOF)
			}
			return nil, fmt.Errorf("trace: chunk %d: %w", i, err)
		}
		sumInstrs += uint64(b.NumInstrs)
		blocks = append(blocks, b)
	}
	if rr.Len() != 0 {
		return nil, fmt.Errorf("trace: chunk %d: %d trailing payload bytes: %w", i, rr.Len(), ErrCorrupt)
	}
	if sumInstrs != instrs {
		return nil, fmt.Errorf("trace: chunk %d: instruction count mismatch (header %d, decoded %d): %w",
			i, instrs, sumInstrs, ErrCorrupt)
	}
	return blocks, nil
}

// Seek positions the sequential cursor at the start of the given chunk.
func (ir *IndexedReader) Seek(chunk int) error {
	if chunk < 0 || chunk > len(ir.chunks) {
		return fmt.Errorf("trace: seek to chunk %d out of range [0,%d]", chunk, len(ir.chunks))
	}
	ir.curIdx = chunk
	ir.cur = nil
	ir.pos = 0
	return nil
}

// Read decodes the next block at the cursor (reusing MemOps capacity),
// returning io.EOF after the final chunk.
func (ir *IndexedReader) Read(b *isa.Block) error {
	for ir.pos >= len(ir.cur) {
		if ir.curIdx >= len(ir.chunks) {
			return io.EOF
		}
		blocks, err := ir.DecodeChunk(ir.curIdx)
		if err != nil {
			return err
		}
		ir.cur = blocks
		ir.curIdx++
		ir.pos = 0
	}
	src := &ir.cur[ir.pos]
	ir.pos++
	b.PC, b.NumInstrs, b.CTI, b.Target = src.PC, src.NumInstrs, src.CTI, src.Target
	b.MemOps = append(b.MemOps[:0], src.MemOps...)
	return nil
}
