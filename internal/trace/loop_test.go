package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

func recordedWeb(t *testing.T, n uint64) []byte {
	t.Helper()
	prog := workload.MustBuildProgram(workload.Web(), 0)
	var buf bytes.Buffer
	if err := Record(&buf, "Web", 0, workload.NewGenerator(prog, 5), n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoopReplaysExactly(t *testing.T) {
	data := recordedWeb(t, 1000)
	l, err := NewLoop(data)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "Web" {
		t.Fatalf("name = %q", l.Name())
	}
	// First pass must equal the generator's stream.
	prog := workload.MustBuildProgram(workload.Web(), 0)
	ref := workload.NewGenerator(prog, 5)
	var got, want isa.Block
	for i := 0; i < 1000; i++ {
		l.Next(&got)
		ref.Next(&want)
		if got.PC != want.PC || got.CTI != want.CTI {
			t.Fatalf("block %d mismatch", i)
		}
	}
	if l.Passes() != 0 {
		t.Fatalf("passes = %d before wrap", l.Passes())
	}
}

func TestLoopWrapsAround(t *testing.T) {
	data := recordedWeb(t, 100)
	l, err := NewLoop(data)
	if err != nil {
		t.Fatal(err)
	}
	var first, b isa.Block
	l.Next(&first)
	for i := 0; i < 99; i++ {
		l.Next(&b)
	}
	// Next read wraps to block zero.
	l.Next(&b)
	if b.PC != first.PC {
		t.Fatalf("wrap did not restart: %#x vs %#x", uint64(b.PC), uint64(first.PC))
	}
	if l.Passes() != 1 {
		t.Fatalf("passes = %d", l.Passes())
	}
	// Keep going for several passes.
	for i := 0; i < 350; i++ {
		l.Next(&b)
	}
	if l.Passes() != 4 {
		t.Fatalf("passes = %d after 450 reads of a 100-block trace", l.Passes())
	}
}

func TestLoopRejectsGarbage(t *testing.T) {
	if _, err := NewLoop([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoopRejectsEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "empty", 0)
	w.Flush()
	if _, err := NewLoop(buf.Bytes()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestLoopDrivesBlocksValid(t *testing.T) {
	data := recordedWeb(t, 500)
	l, err := NewLoop(data)
	if err != nil {
		t.Fatal(err)
	}
	var b isa.Block
	for i := 0; i < 2000; i++ {
		l.Next(&b)
		if err := b.Validate(); err != nil {
			t.Fatalf("replayed block %d invalid: %v", i, err)
		}
	}
}
