package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/workload"
)

func sampleBlocks() []isa.Block {
	return []isa.Block{
		{PC: 0x1000, NumInstrs: 4, CTI: isa.CTINone},
		{PC: 0x1010, NumInstrs: 8, CTI: isa.CTICondTakenFwd, Target: 0x1100,
			MemOps: []isa.MemOp{{Addr: 0x20000, Kind: isa.MemLoad}, {Addr: 0x20040, Kind: isa.MemStore}}},
		{PC: 0x1100, NumInstrs: 2, CTI: isa.CTICall, Target: 0x8000},
		{PC: 0x8000, NumInstrs: 16, CTI: isa.CTIReturn, Target: 0x1108,
			MemOps: []isa.MemOp{{Addr: 0x30000, Kind: isa.MemLoad}}},
		{PC: 0x1108, NumInstrs: 3, CTI: isa.CTICondNotTaken},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "unit", 7)
	if err != nil {
		t.Fatal(err)
	}
	in := sampleBlocks()
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Blocks() != uint64(len(in)) {
		t.Fatalf("writer blocks = %d", w.Blocks())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "unit" || r.ASID() != 7 {
		t.Fatalf("header = %q/%d", r.Name(), r.ASID())
	}
	var b isa.Block
	for i := range in {
		if err := r.Read(&b); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if b.PC != in[i].PC || b.NumInstrs != in[i].NumInstrs || b.CTI != in[i].CTI {
			t.Fatalf("block %d mismatch: got %+v want %+v", i, b, in[i])
		}
		if in[i].CTI.ChangesFlow() && b.Target != in[i].Target {
			t.Fatalf("block %d target %#x want %#x", i, uint64(b.Target), uint64(in[i].Target))
		}
		if len(b.MemOps) != len(in[i].MemOps) {
			t.Fatalf("block %d memops %d want %d", i, len(b.MemOps), len(in[i].MemOps))
		}
		for j := range b.MemOps {
			if b.MemOps[j] != in[i].MemOps[j] {
				t.Fatalf("block %d memop %d mismatch", i, j)
			}
		}
	}
	if err := r.Read(&b); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestGeneratorRoundTrip(t *testing.T) {
	prog := workload.MustBuildProgram(workload.Web(), 3)
	const n = 20000

	var buf bytes.Buffer
	if err := Record(&buf, "Web", 3, workload.NewGenerator(prog, 9), n); err != nil {
		t.Fatal(err)
	}
	sizePerBlock := float64(buf.Len()) / n
	if sizePerBlock > 32 {
		t.Errorf("trace too fat: %.1f bytes/block", sizePerBlock)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.NewGenerator(prog, 9)
	var got, want isa.Block
	for i := 0; i < n; i++ {
		ref.Next(&want)
		if err := r.Read(&got); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got.PC != want.PC || got.CTI != want.CTI || got.NumInstrs != want.NumInstrs {
			t.Fatalf("block %d mismatch", i)
		}
		if got.CTI.ChangesFlow() && got.Target != want.Target {
			t.Fatalf("block %d target mismatch", i)
		}
		if len(got.MemOps) != len(want.MemOps) {
			t.Fatalf("block %d memop count mismatch", i)
		}
	}
	if r.Blocks() != n {
		t.Fatalf("reader blocks = %d", r.Blocks())
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTATRACEFILE")))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("IPF")))
	if err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 0)
	b := sampleBlocks()[1]
	w.Write(&b)
	w.Flush()
	raw := buf.Bytes()
	// Chop mid-record (keep header + a few bytes).
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var out isa.Block
	if err := r.Read(&out); err == nil {
		t.Fatal("truncated record accepted")
	} else if err == io.EOF {
		t.Fatal("truncation reported as clean EOF")
	}
}

func TestInvalidCTIRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 0)
	w.Flush()
	// Hand-craft a record with CTI byte 0xEE.
	buf.WriteByte(0x00) // pcDelta 0
	buf.WriteByte(0x04) // numInstrs 4
	buf.WriteByte(0xEE) // bad CTI
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b isa.Block
	if err := r.Read(&b); err == nil {
		t.Fatal("invalid CTI accepted")
	}
}

func TestWriterRejectsInvalidBlock(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 0)
	bad := isa.Block{PC: 0x100, NumInstrs: 0, CTI: isa.CTINone}
	if err := w.Write(&bad); err == nil {
		t.Fatal("invalid block accepted")
	}
}

func TestMemOpsBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 0)
	blocks := sampleBlocks()
	for i := range blocks {
		w.Write(&blocks[i])
	}
	w.Flush()
	r, _ := NewReader(&buf)
	var b isa.Block
	b.MemOps = make([]isa.MemOp, 0, 64)
	backing := &b.MemOps[:1][0] // capture backing array identity via first slot
	_ = backing
	for i := 0; i < len(blocks); i++ {
		if err := r.Read(&b); err != nil {
			t.Fatal(err)
		}
		if cap(b.MemOps) < 64 {
			t.Fatal("reader reallocated the memops buffer")
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	prog := workload.MustBuildProgram(workload.DB(), 0)
	g := workload.NewGenerator(prog, 1)
	var blk isa.Block
	w, _ := NewWriter(io.Discard, "DB", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&blk)
		w.Write(&blk)
	}
}

func BenchmarkRead(b *testing.B) {
	prog := workload.MustBuildProgram(workload.DB(), 0)
	var buf bytes.Buffer
	Record(&buf, "DB", 0, workload.NewGenerator(prog, 1), 100000)
	raw := buf.Bytes()
	b.ResetTimer()
	var r *Reader
	var blk isa.Block
	for i := 0; i < b.N; i++ {
		if r == nil {
			r, _ = NewReader(bytes.NewReader(raw))
		}
		if err := r.Read(&blk); err != nil {
			r = nil
			i--
		}
	}
}

// loopSource feeds Record an endless repetition of the sample blocks.
// The counter is atomic so tests can watch progress from outside.
type loopSource struct{ i atomic.Int64 }

func (s *loopSource) Next(b *isa.Block) {
	blocks := sampleBlocks()
	*b = blocks[int(s.i.Load())%len(blocks)]
	s.i.Add(1)
}

func TestRecordContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := RecordContext(ctx, &buf, "unit", 0, &loopSource{}, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RecordContext = %v, want context.Canceled", err)
	}
	// The flushed prefix must still be a readable trace (header only
	// here, since cancellation landed before the first block).
	if _, err := NewReader(&buf); err != nil {
		t.Fatalf("interrupted trace unreadable: %v", err)
	}
}

func TestRecordContextPartialPrefixIsValid(t *testing.T) {
	// Cancel mid-stream: the poll interval means some multiple of
	// ctxPollBlocks blocks get written before the loop notices.
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	src := &loopSource{}
	done := make(chan error, 1)
	go func() { done <- RecordContext(ctx, &buf, "unit", 0, src, 1<<40) }()
	for src.i.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("RecordContext = %v, want context.Canceled", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b isa.Block
	n := 0
	for {
		if err := r.Read(&b); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("partial trace corrupt at block %d: %v", n, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("partial trace recorded no blocks")
	}
}
