package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// FuzzReader feeds arbitrary bytes to the trace reader; it must never
// panic and must either produce valid blocks or a clean error.
func FuzzReader(f *testing.F) {
	// Seed with a real trace and a few mutations of it.
	prog := workload.MustBuildProgram(workload.Web(), 0)
	var buf bytes.Buffer
	if err := Record(&buf, "Web", 0, workload.NewGenerator(prog, 1), 200); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("IPFTRC01"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	for i := 20; i < len(mutated); i += 37 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	// And the same trio for the v2 chunked container.
	var buf2 bytes.Buffer
	if err := RecordV2(&buf2, "Web", 0, workload.NewGenerator(prog, 1), 200, 64); err != nil {
		f.Fatal(err)
	}
	valid2 := buf2.Bytes()
	f.Add(valid2)
	f.Add(valid2[:len(valid2)/2])
	f.Add([]byte("IPFTRC02"))
	mutated2 := append([]byte(nil), valid2...)
	for i := 20; i < len(mutated2); i += 37 {
		mutated2[i] ^= 0xff
	}
	f.Add(mutated2)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var b isa.Block
		for i := 0; i < 10_000; i++ {
			err := r.Read(&b)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corrupt record rejected cleanly
			}
			// Every accepted block must be structurally valid.
			if verr := b.Validate(); verr != nil {
				t.Fatalf("reader returned invalid block: %v", verr)
			}
		}
	})
}

// FuzzRoundTripV2 checks that any generator prefix survives a v2
// encode/decode round trip bit-exactly, across chunk sizes, through
// both the streaming reader and the chunk index.
func FuzzRoundTripV2(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint8(64))
	f.Add(uint64(7), uint16(1), uint8(1))
	f.Add(uint64(42), uint16(1000), uint8(0))
	f.Add(uint64(3), uint16(513), uint8(255))

	prog := workload.MustBuildProgram(workload.Web(), 0)
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, chunk uint8) {
		var buf bytes.Buffer
		if err := RecordV2(&buf, "Web", 0, workload.NewGenerator(prog, seed), uint64(n), int(chunk)); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()

		ref := workload.NewGenerator(prog, seed)
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		ir, err := OpenIndexed(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		if ir.Blocks() != uint64(n) {
			t.Fatalf("index blocks = %d, want %d", ir.Blocks(), n)
		}
		var want, a, b isa.Block
		for i := 0; i < int(n); i++ {
			ref.Next(&want)
			if err := r.Read(&a); err != nil {
				t.Fatalf("stream block %d: %v", i, err)
			}
			if err := ir.Read(&b); err != nil {
				t.Fatalf("indexed block %d: %v", i, err)
			}
			for _, got := range []*isa.Block{&a, &b} {
				if got.PC != want.PC || got.CTI != want.CTI || got.NumInstrs != want.NumInstrs ||
					len(got.MemOps) != len(want.MemOps) {
					t.Fatalf("block %d mismatch", i)
				}
				if want.CTI.ChangesFlow() && got.Target != want.Target {
					t.Fatalf("block %d target mismatch", i)
				}
			}
		}
		if err := r.Read(&a); err != io.EOF {
			t.Fatalf("stream tail = %v, want EOF", err)
		}
		if err := ir.Read(&b); err != io.EOF {
			t.Fatalf("indexed tail = %v, want EOF", err)
		}
	})
}

// FuzzLoop checks the looping replay path against arbitrary input.
func FuzzLoop(f *testing.F) {
	prog := workload.MustBuildProgram(workload.Web(), 0)
	var buf bytes.Buffer
	if err := Record(&buf, "Web", 0, workload.NewGenerator(prog, 1), 50); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := NewLoop(data)
		if err != nil {
			return
		}
		// A loop that validated must replay indefinitely without
		// panicking... unless the trace is corrupt mid-stream, in which
		// case Next panics by contract; treat that as rejection only if
		// the first full pass succeeded.
		defer func() { _ = recover() }()
		var b isa.Block
		for i := 0; i < 500; i++ {
			l.Next(&b)
		}
	})
}
