package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// FuzzReader feeds arbitrary bytes to the trace reader; it must never
// panic and must either produce valid blocks or a clean error.
func FuzzReader(f *testing.F) {
	// Seed with a real trace and a few mutations of it.
	prog := workload.MustBuildProgram(workload.Web(), 0)
	var buf bytes.Buffer
	if err := Record(&buf, "Web", 0, workload.NewGenerator(prog, 1), 200); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("IPFTRC01"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	for i := 20; i < len(mutated); i += 37 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var b isa.Block
		for i := 0; i < 10_000; i++ {
			err := r.Read(&b)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corrupt record rejected cleanly
			}
			// Every accepted block must be structurally valid.
			if verr := b.Validate(); verr != nil {
				t.Fatalf("reader returned invalid block: %v", verr)
			}
		}
	})
}

// FuzzLoop checks the looping replay path against arbitrary input.
func FuzzLoop(f *testing.F) {
	prog := workload.MustBuildProgram(workload.Web(), 0)
	var buf bytes.Buffer
	if err := Record(&buf, "Web", 0, workload.NewGenerator(prog, 1), 50); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := NewLoop(data)
		if err != nil {
			return
		}
		// A loop that validated must replay indefinitely without
		// panicking... unless the trace is corrupt mid-stream, in which
		// case Next panics by contract; treat that as rejection only if
		// the first full pass succeeded.
		defer func() { _ = recover() }()
		var b isa.Block
		for i := 0; i < 500; i++ {
			l.Next(&b)
		}
	})
}
