package trace

// Exported record-codec primitives. The corpus layer's content-defined
// chunk store re-encodes the same per-block records the v1 stream and
// v2 chunk payloads carry — exporting thin wrappers (rather than a
// parallel codec) keeps one source of truth for the wire format.

import (
	"bytes"
	"io"

	"repro/internal/isa"
)

// RecordReader is the input a record decode needs; bytes.Reader and
// bufio.Reader both satisfy it.
type RecordReader interface {
	io.Reader
	io.ByteReader
}

// EncodeRecord appends one block record to dst using prevNext as the
// delta base and returns the new base (the block's NextPC). scratch
// must be at least binary.MaxVarintLen64 bytes. Encoding a stream of
// blocks with a running base produces exactly the v1 record stream;
// encoding with base 0 produces a self-based record (absolute PC in
// the first delta) that decodes without outside context.
func EncodeRecord(dst *bytes.Buffer, scratch []byte, prevNext isa.Addr, b *isa.Block) isa.Addr {
	return encodeRecord(dst, scratch, prevNext, b)
}

// ReadRecord decodes one record into *b (reusing MemOps capacity),
// advancing *prevNext to the block's NextPC. blockIdx labels error
// messages. A clean end of input before the first byte returns bare
// io.EOF; any later cut returns io.ErrUnexpectedEOF (wrapped).
func ReadRecord(r RecordReader, prevNext *isa.Addr, blockIdx uint64, b *isa.Block) error {
	return readRecord(r, prevNext, blockIdx, b)
}
