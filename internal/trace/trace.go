// Package trace defines a compact binary format for recorded basic-block
// streams, mirroring the paper's trace-driven methodology. The simulator
// normally consumes workload generators directly (they are deterministic,
// so a trace adds nothing), but traces allow capturing a stream once and
// replaying it across many configurations, exchanging streams between
// tools, and validating stream statistics offline with cmd/tracegen.
//
// Format (little-endian, after an 8-byte magic):
//
//	header:  magic "IPFTRC01" | name len varint | name bytes | asid varint
//	record:  pcDelta zigzag-varint (from previous block's NextPC)
//	         numInstrs varint
//	         cti byte
//	         targetDelta zigzag-varint (from block end; flow-changing CTIs only)
//	         numMemOps varint
//	         per memop: addrDelta zigzag-varint (from previous memop) | kind byte
//
// Deltas make hot-loop records 3-6 bytes each.
//
// A second container format, IPFTRC02 (see v2.go), wraps the same record
// encoding in compressed, CRC-protected chunks with a trailing index for
// O(1) seek and parallel decode. NewReader transparently accepts both.
package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

const magic = "IPFTRC01"

// ErrBadMagic is returned when the input is not a trace.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// putUvarint / putSvarint append one varint to dst using scratch as the
// encode buffer (scratch must be at least binary.MaxVarintLen64 long).
func putUvarint(dst *bytes.Buffer, scratch []byte, v uint64) {
	dst.Write(scratch[:binary.PutUvarint(scratch, v)])
}

func putSvarint(dst *bytes.Buffer, scratch []byte, v int64) {
	dst.Write(scratch[:binary.PutVarint(scratch, v)])
}

// encodeRecord appends one block record to dst using prevNext as the
// delta base, returning the new base (the block's NextPC). Both the v1
// stream and v2 chunk payloads are sequences of these records.
func encodeRecord(dst *bytes.Buffer, scratch []byte, prevNext isa.Addr, b *isa.Block) isa.Addr {
	putSvarint(dst, scratch, int64(b.PC)-int64(prevNext))
	putUvarint(dst, scratch, uint64(b.NumInstrs))
	dst.WriteByte(byte(b.CTI))
	if b.CTI.ChangesFlow() {
		putSvarint(dst, scratch, int64(b.Target)-int64(b.End()))
	}
	putUvarint(dst, scratch, uint64(len(b.MemOps)))
	prev := b.PC
	for _, m := range b.MemOps {
		putSvarint(dst, scratch, int64(m.Addr)-int64(prev))
		dst.WriteByte(byte(m.Kind))
		prev = m.Addr
	}
	return b.NextPC()
}

// recordReader is what the record decoder needs from its input; both
// bufio.Reader (v1 streams) and bytes.Reader (v2 chunk payloads)
// satisfy it.
type recordReader interface {
	io.Reader
	io.ByteReader
}

// readRecord decodes one record into *b (reusing MemOps capacity),
// advancing *prevNext to the block's NextPC. blockIdx labels error
// messages. A clean end of input before the first byte returns bare
// io.EOF; any later cut returns io.ErrUnexpectedEOF (wrapped). Errors
// other than io.EOF carry a "block N" prefix but no package prefix —
// callers add stream- or chunk-level context.
func readRecord(r recordReader, prevNext *isa.Addr, blockIdx uint64, b *isa.Block) error {
	truncated := func(err error) error {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("block %d truncated: %w", blockIdx, err)
	}
	pcDelta, err := binary.ReadVarint(r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("block %d: %w", blockIdx, err)
	}
	b.PC = isa.Addr(int64(*prevNext) + pcDelta)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return truncated(err)
	}
	b.NumInstrs = int(n)
	ctiByte, err := r.ReadByte()
	if err != nil {
		return truncated(err)
	}
	b.CTI = isa.CTIKind(ctiByte)
	if int(b.CTI) >= isa.NumCTIKinds {
		return fmt.Errorf("block %d: invalid CTI %d", blockIdx, ctiByte)
	}
	b.Target = 0
	if b.CTI.ChangesFlow() {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return truncated(err)
		}
		b.Target = isa.Addr(int64(b.End()) + d)
	}
	nOps, err := binary.ReadUvarint(r)
	if err != nil {
		return truncated(err)
	}
	if nOps > 1<<16 {
		return fmt.Errorf("block %d: implausible memop count %d", blockIdx, nOps)
	}
	b.MemOps = b.MemOps[:0]
	prev := b.PC
	for i := uint64(0); i < nOps; i++ {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return truncated(err)
		}
		kindByte, err := r.ReadByte()
		if err != nil {
			return truncated(err)
		}
		if kindByte > byte(isa.MemStore) {
			return fmt.Errorf("block %d: invalid memop kind %d", blockIdx, kindByte)
		}
		addr := isa.Addr(int64(prev) + d)
		b.MemOps = append(b.MemOps, isa.MemOp{Addr: addr, Kind: isa.MemKind(kindByte)})
		prev = addr
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("block %d: %w", blockIdx, err)
	}
	*prevNext = b.NextPC()
	return nil
}

// Writer encodes a block stream.
type Writer struct {
	w        *bufio.Writer
	prevNext isa.Addr
	buf      []byte
	recBuf   bytes.Buffer
	blocks   uint64
}

// NewWriter writes a trace header for the given workload name and
// address-space id, returning the writer.
func NewWriter(w io.Writer, name string, asid uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	tw := &Writer{w: bw, buf: make([]byte, binary.MaxVarintLen64)}
	tw.uvarint(uint64(len(name)))
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	tw.uvarint(asid)
	return tw, nil
}

func (t *Writer) uvarint(v uint64) {
	n := binary.PutUvarint(t.buf, v)
	t.w.Write(t.buf[:n])
}

// Write appends one block to the trace.
func (t *Writer) Write(b *isa.Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	t.recBuf.Reset()
	t.prevNext = encodeRecord(&t.recBuf, t.buf, t.prevNext, b)
	if _, err := t.w.Write(t.recBuf.Bytes()); err != nil {
		return err
	}
	t.blocks++
	return nil
}

// Blocks returns the number of blocks written.
func (t *Writer) Blocks() uint64 { return t.blocks }

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// countingReader tracks how many bytes have been consumed, so the v2
// decode path can cross-check frame offsets against the chunk index.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// Reader decodes a block stream in either container format: the v1
// flat stream or the v2 chunked container (decoded strictly, with every
// chunk CRC and count verified as it streams past).
type Reader struct {
	r        *countingReader
	format   string
	name     string
	asid     uint64
	prevNext isa.Addr
	blocks   uint64

	// v2 streaming state (see v2.go).
	chunk       int
	remRecs     uint64
	chunkInstrs uint64
	wantInstrs  uint64
	cur         bytes.Reader
	rawBuf      []byte
	compBuf     []byte
	seen        []ChunkInfo
	done        bool
}

// NewReader validates the header and returns a reader positioned at the
// first record. Both IPFTRC01 and IPFTRC02 inputs are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<16)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic && string(head) != magicV2 {
		return nil, ErrBadMagic
	}
	tr := &Reader{r: cr, format: string(head)}
	nameLen, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	tr.name = string(nameBuf)
	if tr.asid, err = binary.ReadUvarint(cr); err != nil {
		return nil, fmt.Errorf("trace: reading asid: %w", err)
	}
	return tr, nil
}

// Name returns the workload name recorded in the header.
func (t *Reader) Name() string { return t.name }

// ASID returns the address-space id recorded in the header.
func (t *Reader) ASID() uint64 { return t.asid }

// Format returns the container magic ("IPFTRC01" or "IPFTRC02").
func (t *Reader) Format() string { return t.format }

// Blocks returns the number of blocks read so far.
func (t *Reader) Blocks() uint64 { return t.blocks }

// Chunks returns the chunk descriptors seen so far (v2 containers
// only; empty for v1). Complete once Read has returned io.EOF.
func (t *Reader) Chunks() []ChunkInfo { return append([]ChunkInfo(nil), t.seen...) }

// Read decodes the next block into *b (reusing MemOps capacity). It
// returns io.EOF at a clean end of stream and io.ErrUnexpectedEOF
// (wrapped, with the offending chunk named for v2) when the input is
// cut mid-record or mid-container.
func (t *Reader) Read(b *isa.Block) error {
	if t.format == magicV2 {
		return t.readV2(b)
	}
	err := readRecord(t.r, &t.prevNext, t.blocks, b)
	switch {
	case err == nil:
		t.blocks++
		return nil
	case err == io.EOF:
		return io.EOF
	default:
		return fmt.Errorf("trace: %w", err)
	}
}

// Record captures n blocks from src into w.
func Record(w io.Writer, name string, asid uint64, src interface{ Next(*isa.Block) }, n uint64) error {
	return RecordContext(context.Background(), w, name, asid, src, n)
}

// ctxPollBlocks is how many blocks the capture and analysis loops
// process between context checks — frequent enough that cancellation
// lands within microseconds, rare enough to stay off the hot path.
const ctxPollBlocks = 8192

// RecordContext is Record with cooperative cancellation: the capture
// loop polls ctx every few thousand blocks and stops mid-stream with
// ctx's error. The written prefix is a valid trace of the blocks
// captured so far.
func RecordContext(ctx context.Context, w io.Writer, name string, asid uint64, src interface{ Next(*isa.Block) }, n uint64) error {
	tw, err := NewWriter(w, name, asid)
	if err != nil {
		return err
	}
	var b isa.Block
	for i := uint64(0); i < n; i++ {
		if i%ctxPollBlocks == 0 {
			if err := ctx.Err(); err != nil {
				tw.Flush()
				return err
			}
		}
		src.Next(&b)
		if err := tw.Write(&b); err != nil {
			return err
		}
	}
	return tw.Flush()
}
