// Package trace defines a compact binary format for recorded basic-block
// streams, mirroring the paper's trace-driven methodology. The simulator
// normally consumes workload generators directly (they are deterministic,
// so a trace adds nothing), but traces allow capturing a stream once and
// replaying it across many configurations, exchanging streams between
// tools, and validating stream statistics offline with cmd/tracegen.
//
// Format (little-endian, after an 8-byte magic):
//
//	header:  magic "IPFTRC01" | name len varint | name bytes | asid varint
//	record:  pcDelta zigzag-varint (from previous block's NextPC)
//	         numInstrs varint
//	         cti byte
//	         targetDelta zigzag-varint (from block end; flow-changing CTIs only)
//	         numMemOps varint
//	         per memop: addrDelta zigzag-varint (from previous memop) | kind byte
//
// Deltas make hot-loop records 3-6 bytes each.
package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

const magic = "IPFTRC01"

// ErrBadMagic is returned when the input is not a trace.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// Writer encodes a block stream.
type Writer struct {
	w        *bufio.Writer
	prevNext isa.Addr
	buf      []byte
	blocks   uint64
}

// NewWriter writes a trace header for the given workload name and
// address-space id, returning the writer.
func NewWriter(w io.Writer, name string, asid uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	tw := &Writer{w: bw, buf: make([]byte, binary.MaxVarintLen64)}
	tw.uvarint(uint64(len(name)))
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	tw.uvarint(asid)
	return tw, nil
}

func (t *Writer) uvarint(v uint64) {
	n := binary.PutUvarint(t.buf, v)
	t.w.Write(t.buf[:n])
}

func (t *Writer) svarint(v int64) {
	n := binary.PutVarint(t.buf, v)
	t.w.Write(t.buf[:n])
}

// Write appends one block to the trace.
func (t *Writer) Write(b *isa.Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	t.svarint(int64(b.PC) - int64(t.prevNext))
	t.uvarint(uint64(b.NumInstrs))
	t.w.WriteByte(byte(b.CTI))
	if b.CTI.ChangesFlow() {
		t.svarint(int64(b.Target) - int64(b.End()))
	}
	t.uvarint(uint64(len(b.MemOps)))
	prev := b.PC
	for _, m := range b.MemOps {
		t.svarint(int64(m.Addr) - int64(prev))
		t.w.WriteByte(byte(m.Kind))
		prev = m.Addr
	}
	t.prevNext = b.NextPC()
	t.blocks++
	return nil
}

// Blocks returns the number of blocks written.
func (t *Writer) Blocks() uint64 { return t.blocks }

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader decodes a block stream.
type Reader struct {
	r        *bufio.Reader
	name     string
	asid     uint64
	prevNext isa.Addr
	blocks   uint64
}

// NewReader validates the header and returns a reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	tr := &Reader{r: br}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	tr.name = string(nameBuf)
	if tr.asid, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("trace: reading asid: %w", err)
	}
	return tr, nil
}

// Name returns the workload name recorded in the header.
func (t *Reader) Name() string { return t.name }

// ASID returns the address-space id recorded in the header.
func (t *Reader) ASID() uint64 { return t.asid }

// Blocks returns the number of blocks read so far.
func (t *Reader) Blocks() uint64 { return t.blocks }

// Read decodes the next block into *b (reusing MemOps capacity). It
// returns io.EOF at a clean end of stream.
func (t *Reader) Read(b *isa.Block) error {
	pcDelta, err := binary.ReadVarint(t.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: block %d: %w", t.blocks, err)
	}
	b.PC = isa.Addr(int64(t.prevNext) + pcDelta)
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return t.corrupt(err)
	}
	b.NumInstrs = int(n)
	ctiByte, err := t.r.ReadByte()
	if err != nil {
		return t.corrupt(err)
	}
	b.CTI = isa.CTIKind(ctiByte)
	if int(b.CTI) >= isa.NumCTIKinds {
		return fmt.Errorf("trace: block %d: invalid CTI %d", t.blocks, ctiByte)
	}
	b.Target = 0
	if b.CTI.ChangesFlow() {
		d, err := binary.ReadVarint(t.r)
		if err != nil {
			return t.corrupt(err)
		}
		b.Target = isa.Addr(int64(b.End()) + d)
	}
	nOps, err := binary.ReadUvarint(t.r)
	if err != nil {
		return t.corrupt(err)
	}
	if nOps > 1<<16 {
		return fmt.Errorf("trace: block %d: implausible memop count %d", t.blocks, nOps)
	}
	b.MemOps = b.MemOps[:0]
	prev := b.PC
	for i := uint64(0); i < nOps; i++ {
		d, err := binary.ReadVarint(t.r)
		if err != nil {
			return t.corrupt(err)
		}
		kindByte, err := t.r.ReadByte()
		if err != nil {
			return t.corrupt(err)
		}
		if kindByte > byte(isa.MemStore) {
			return fmt.Errorf("trace: block %d: invalid memop kind %d", t.blocks, kindByte)
		}
		addr := isa.Addr(int64(prev) + d)
		b.MemOps = append(b.MemOps, isa.MemOp{Addr: addr, Kind: isa.MemKind(kindByte)})
		prev = addr
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("trace: block %d: %w", t.blocks, err)
	}
	t.prevNext = b.NextPC()
	t.blocks++
	return nil
}

func (t *Reader) corrupt(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: block %d truncated: %w", t.blocks, err)
}

// Record captures n blocks from src into w.
func Record(w io.Writer, name string, asid uint64, src interface{ Next(*isa.Block) }, n uint64) error {
	return RecordContext(context.Background(), w, name, asid, src, n)
}

// ctxPollBlocks is how many blocks the capture and analysis loops
// process between context checks — frequent enough that cancellation
// lands within microseconds, rare enough to stay off the hot path.
const ctxPollBlocks = 8192

// RecordContext is Record with cooperative cancellation: the capture
// loop polls ctx every few thousand blocks and stops mid-stream with
// ctx's error. The written prefix is a valid trace of the blocks
// captured so far.
func RecordContext(ctx context.Context, w io.Writer, name string, asid uint64, src interface{ Next(*isa.Block) }, n uint64) error {
	tw, err := NewWriter(w, name, asid)
	if err != nil {
		return err
	}
	var b isa.Block
	for i := uint64(0); i < n; i++ {
		if i%ctxPollBlocks == 0 {
			if err := ctx.Err(); err != nil {
				tw.Flush()
				return err
			}
		}
		src.Next(&b)
		if err := tw.Write(&b); err != nil {
			return err
		}
	}
	return tw.Flush()
}
