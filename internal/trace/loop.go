package trace

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Loop replays an in-memory recorded trace as an endless block stream,
// rewinding at end of trace. It implements workload.Source, so a
// captured trace can drive the simulator exactly like a live generator —
// the library's equivalent of the paper's trace-driven methodology.
type Loop struct {
	data   []byte
	r      *Reader
	name   string
	asid   uint64
	blocks uint64 // blocks per pass, learned on the first pass
	passes uint64
}

// NewLoop validates the trace header and returns a looping source. The
// trace must contain at least one block.
func NewLoop(data []byte) (*Loop, error) {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	l := &Loop{data: data, r: r, name: r.Name(), asid: r.ASID()}
	// Probe one block so an empty trace fails fast.
	var b isa.Block
	if err := r.Read(&b); err != nil {
		return nil, fmt.Errorf("trace: empty or corrupt trace: %w", err)
	}
	// Restart so the stream begins at block zero.
	if err := l.rewind(); err != nil {
		return nil, err
	}
	return l, nil
}

// Name returns the workload name from the trace header.
func (l *Loop) Name() string { return l.name }

// ASID returns the address-space id from the trace header.
func (l *Loop) ASID() uint64 { return l.asid }

// Passes returns how many times the trace has wrapped around.
func (l *Loop) Passes() uint64 { return l.passes }

func (l *Loop) rewind() error {
	r, err := NewReader(bytes.NewReader(l.data))
	if err != nil {
		return err
	}
	l.r = r
	return nil
}

// Next implements workload.Source. A corrupt mid-stream record panics:
// NewLoop validated the header, and replay corruption indicates memory
// corruption rather than recoverable input error.
func (l *Loop) Next(b *isa.Block) {
	err := l.r.Read(b)
	if err == io.EOF {
		if l.blocks == 0 {
			l.blocks = l.r.Blocks()
		}
		l.passes++
		if err := l.rewind(); err != nil {
			panic(fmt.Sprintf("trace: rewind failed: %v", err))
		}
		err = l.r.Read(b)
	}
	if err != nil {
		panic(fmt.Sprintf("trace: replay failed: %v", err))
	}
}
