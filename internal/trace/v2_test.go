package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

func blocksEqual(a, b *isa.Block) bool {
	if a.PC != b.PC || a.NumInstrs != b.NumInstrs || a.CTI != b.CTI || a.Target != b.Target ||
		len(a.MemOps) != len(b.MemOps) {
		return false
	}
	for i := range a.MemOps {
		if a.MemOps[i] != b.MemOps[i] {
			return false
		}
	}
	return true
}

// recordV2Bytes captures n generator blocks into a v2 container.
func recordV2Bytes(t testing.TB, name string, seed, n uint64, chunk int) []byte {
	t.Helper()
	prog := workload.MustBuildProgram(workload.Web(), 3)
	var buf bytes.Buffer
	if err := RecordV2(&buf, name, 3, workload.NewGenerator(prog, seed), n, chunk); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainV2 reads a container to the end, returning the blocks and the
// terminal error (io.EOF for a clean end).
func drainV2(raw []byte) ([]isa.Block, error) {
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	var out []isa.Block
	for {
		var b isa.Block
		if err := r.Read(&b); err != nil {
			return out, err
		}
		out = append(out, b)
	}
}

func TestV2RoundTripMatchesV1(t *testing.T) {
	const n = 20000
	prog := workload.MustBuildProgram(workload.Web(), 3)

	var v1 bytes.Buffer
	if err := Record(&v1, "Web", 3, workload.NewGenerator(prog, 9), n); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := RecordV2(&v2, "Web", 3, workload.NewGenerator(prog, 9), n, 0); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Errorf("v2 container (%d bytes) not smaller than v1 stream (%d bytes)", v2.Len(), v1.Len())
	}

	r1, err := NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Format() != magicV2 {
		t.Fatalf("v2 format = %q", r2.Format())
	}
	if r2.Name() != "Web" || r2.ASID() != 3 {
		t.Fatalf("v2 header = %q/%d", r2.Name(), r2.ASID())
	}
	var a, b isa.Block
	for i := 0; i < n; i++ {
		if err := r1.Read(&a); err != nil {
			t.Fatalf("v1 block %d: %v", i, err)
		}
		if err := r2.Read(&b); err != nil {
			t.Fatalf("v2 block %d: %v", i, err)
		}
		if !blocksEqual(&a, &b) {
			t.Fatalf("block %d differs: v1 %+v v2 %+v", i, a, b)
		}
	}
	if err := r2.Read(&b); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r2.Blocks() != n {
		t.Fatalf("v2 reader blocks = %d", r2.Blocks())
	}
	wantChunks := (n + DefaultChunkRecords - 1) / DefaultChunkRecords
	if got := len(r2.Chunks()); got != wantChunks {
		t.Fatalf("chunks = %d, want %d", got, wantChunks)
	}
}

func TestIndexedReaderSeekAndRead(t *testing.T) {
	const n, chunk = 5000, 512
	raw := recordV2Bytes(t, "Web", 9, n, chunk)
	want, err := drainV2(raw)
	if err != io.EOF {
		t.Fatal(err)
	}

	ir, err := OpenIndexed(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if ir.Name() != "Web" || ir.ASID() != 3 {
		t.Fatalf("header = %q/%d", ir.Name(), ir.ASID())
	}
	if ir.Blocks() != n {
		t.Fatalf("index blocks = %d", ir.Blocks())
	}
	if got, want := ir.NumChunks(), (n+chunk-1)/chunk; got != want {
		t.Fatalf("chunks = %d, want %d", got, want)
	}
	var sum uint64
	for _, c := range ir.Chunks() {
		sum += c.Instrs
	}
	if sum != ir.Instructions() {
		t.Fatalf("index instrs %d != sum %d", ir.Instructions(), sum)
	}

	// Full sequential read matches the streaming decode.
	var b isa.Block
	for i := range want {
		if err := ir.Read(&b); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !blocksEqual(&b, &want[i]) {
			t.Fatalf("block %d differs from streaming decode", i)
		}
	}
	if err := ir.Read(&b); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}

	// Seek lands exactly on chunk boundaries.
	for _, start := range []int{0, 3, ir.NumChunks() - 1} {
		if err := ir.Seek(start); err != nil {
			t.Fatal(err)
		}
		skip := 0
		for _, c := range ir.Chunks()[:start] {
			skip += int(c.Records)
		}
		for i := skip; i < len(want); i++ {
			if err := ir.Read(&b); err != nil {
				t.Fatalf("seek %d block %d: %v", start, i, err)
			}
			if !blocksEqual(&b, &want[i]) {
				t.Fatalf("after Seek(%d), block %d differs", start, i)
			}
		}
		if err := ir.Read(&b); err != io.EOF {
			t.Fatalf("expected EOF after seek, got %v", err)
		}
	}
	if err := ir.Seek(ir.NumChunks()); err != nil {
		t.Fatal(err)
	}
	if err := ir.Read(&b); err != io.EOF {
		t.Fatalf("seek-to-end read = %v, want EOF", err)
	}
	if err := ir.Seek(ir.NumChunks() + 1); err == nil {
		t.Fatal("out-of-range seek accepted")
	}
}

func TestParallelShardDecode(t *testing.T) {
	const n, chunk, shards = 8000, 256, 4
	raw := recordV2Bytes(t, "Web", 11, n, chunk)
	want, err := drainV2(raw)
	if err != io.EOF {
		t.Fatal(err)
	}
	ir, err := OpenIndexed(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}

	// Each shard decodes a strided subset of chunks concurrently;
	// DecodeChunk shares no cursor state, so the results must agree
	// exactly with the sequential decode.
	decoded := make([][]isa.Block, ir.NumChunks())
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < ir.NumChunks(); i += shards {
				blocks, err := ir.DecodeChunk(i)
				if err != nil {
					errs[s] = err
					return
				}
				decoded[i] = blocks
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	var got []isa.Block
	for _, blocks := range decoded {
		got = append(got, blocks...)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded decode yielded %d blocks, want %d", len(got), len(want))
	}
	for i := range got {
		if !blocksEqual(&got[i], &want[i]) {
			t.Fatalf("block %d differs under sharded decode", i)
		}
	}
}

// TestV2TruncationTable cuts a container at every byte offset: no proper
// prefix may ever read to a clean io.EOF, and once the header parses,
// the failure must be flagged as truncation or corruption.
func TestV2TruncationTable(t *testing.T) {
	raw := recordV2Bytes(t, "Web", 5, 40, 16)
	for cut := 1; cut < len(raw); cut++ {
		prefix := raw[:cut]
		blocks, err := drainV2(prefix)
		if err == nil || err == io.EOF {
			t.Fatalf("cut %d/%d: truncated container read cleanly (%d blocks)", cut, len(raw), len(blocks))
		}
		if cut > len(magicV2)+8 { // header parsed; classify the failure
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d/%d: error %v is neither truncation nor corruption", cut, len(raw), err)
			}
		}
		if _, err := OpenIndexed(bytes.NewReader(prefix), int64(cut)); err == nil {
			t.Fatalf("cut %d/%d: OpenIndexed accepted truncated container", cut, len(raw))
		}
	}
}

// TestV1TruncationTable cuts a flat v1 stream at every byte offset: a
// cut at a record boundary is indistinguishable from a shorter capture
// (clean io.EOF with the full records so far), while any mid-record cut
// must surface io.ErrUnexpectedEOF.
func TestV1TruncationTable(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "unit", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]int{buf.Len(): 0} // offset -> records before it
	in := sampleBlocks()
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries[buf.Len()] = i + 1
	}
	raw := buf.Bytes()
	headerLen := 0
	for off, recs := range boundaries {
		if recs == 0 {
			headerLen = off
		}
	}
	for cut := headerLen; cut <= len(raw); cut++ {
		r, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		var b isa.Block
		n := 0
		var readErr error
		for {
			if readErr = r.Read(&b); readErr != nil {
				break
			}
			n++
		}
		if want, ok := boundaries[cut]; ok {
			if readErr != io.EOF || n != want {
				t.Fatalf("cut %d at boundary: got %d blocks, err %v (want %d, io.EOF)", cut, n, readErr, want)
			}
		} else if !errors.Is(readErr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d mid-record: err = %v, want io.ErrUnexpectedEOF", cut, readErr)
		}
	}
}

// TestCorruptChunkNamesChunk flips a byte inside one chunk's payload:
// both decode paths must reject the container with a diagnostic naming
// that chunk, and the indexed path must still decode the others.
func TestCorruptChunkNamesChunk(t *testing.T) {
	raw := recordV2Bytes(t, "Web", 7, 48, 16) // 3 chunks
	ir, err := OpenIndexed(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	chunks := ir.Chunks()
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	bad := append([]byte(nil), raw...)
	bad[chunks[2].Offset-1] ^= 0xff // last payload byte of chunk 1

	_, err = drainV2(bad)
	if err == nil || err == io.EOF {
		t.Fatal("streaming reader accepted corrupted chunk")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("streaming error %v does not wrap ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "chunk 1") {
		t.Fatalf("streaming error %q does not name chunk 1", err)
	}

	irBad, err := OpenIndexed(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err) // index and footer are untouched
	}
	if _, err := irBad.DecodeChunk(1); err == nil {
		t.Fatal("DecodeChunk accepted corrupted chunk")
	} else if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "chunk 1") {
		t.Fatalf("DecodeChunk error %q: want ErrCorrupt naming chunk 1", err)
	}
	for _, i := range []int{0, 2} {
		if _, err := irBad.DecodeChunk(i); err != nil {
			t.Fatalf("intact chunk %d rejected: %v", i, err)
		}
	}
}

func TestCorruptIndexEntryRejected(t *testing.T) {
	raw := recordV2Bytes(t, "Web", 7, 48, 16)
	// Flip a byte inside the index region (between the last chunk's end
	// and the footer): either the index CRC or the entry cross-check
	// must catch it on both paths.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-footerSize-2] ^= 0x01
	if _, err := drainV2(bad); err == nil || err == io.EOF {
		t.Fatal("streaming reader accepted corrupted index")
	}
	if _, err := OpenIndexed(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Fatal("OpenIndexed accepted corrupted index")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	raw := recordV2Bytes(t, "Web", 7, 20, 16)
	bad := append(append([]byte(nil), raw...), 0x00)
	if _, err := drainV2(bad); err == nil || err == io.EOF {
		t.Fatal("streaming reader accepted trailing garbage")
	}
}

func TestEmptyV2Container(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, "empty", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blocks, err := drainV2(buf.Bytes())
	if err != io.EOF || len(blocks) != 0 {
		t.Fatalf("empty container: %d blocks, err %v", len(blocks), err)
	}
	ir, err := OpenIndexed(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ir.NumChunks() != 0 || ir.Blocks() != 0 {
		t.Fatalf("empty container index: %d chunks, %d blocks", ir.NumChunks(), ir.Blocks())
	}
}

func TestOpenIndexedRejectsV1(t *testing.T) {
	var buf bytes.Buffer
	if err := Record(&buf, "x", 0, &loopSource{}, 10); err != nil {
		t.Fatal(err)
	}
	_, err := OpenIndexed(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err == nil || !strings.Contains(err.Error(), "chunk index") {
		t.Fatalf("v1 input: err = %v, want chunk-index diagnostic", err)
	}
}

func TestRecordV2ContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := RecordV2Context(ctx, &buf, "unit", 0, &loopSource{}, 1<<40, 16)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RecordV2Context = %v, want context.Canceled", err)
	}
	// Cancellation still finalises the container: index + footer present,
	// zero blocks (the poll fired before the first record).
	blocks, err := drainV2(buf.Bytes())
	if err != io.EOF {
		t.Fatalf("interrupted container unreadable: %v", err)
	}
	if len(blocks) != 0 {
		t.Fatalf("interrupted container holds %d blocks, want 0", len(blocks))
	}
}

func TestWriterV2RejectsWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, "x", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	b := sampleBlocks()[0]
	if err := w.Write(&b); err == nil {
		t.Fatal("write after Close accepted")
	}
}

func BenchmarkWriteV2(b *testing.B) {
	prog := workload.MustBuildProgram(workload.DB(), 0)
	g := workload.NewGenerator(prog, 1)
	var blk isa.Block
	w, err := NewWriterV2(io.Discard, "DB", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&blk)
		w.Write(&blk)
	}
}

func BenchmarkDecodeChunk(b *testing.B) {
	prog := workload.MustBuildProgram(workload.DB(), 0)
	var buf bytes.Buffer
	if err := RecordV2(&buf, "DB", 0, workload.NewGenerator(prog, 1), 100000, 0); err != nil {
		b.Fatal(err)
	}
	ir, err := OpenIndexed(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.DecodeChunk(i % ir.NumChunks()); err != nil {
			b.Fatal(err)
		}
	}
}
