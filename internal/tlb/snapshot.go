package tlb

import "fmt"

// Snapshot is a deep copy of one TLB's dynamic state.
type Snapshot struct {
	pages    []Page
	valid    []bool
	assoc    int
	accesses uint64
	misses   uint64
}

// Snapshot captures the TLB's current state.
func (t *TLB) Snapshot() *Snapshot {
	return &Snapshot{
		pages:    append([]Page(nil), t.pages...),
		valid:    append([]bool(nil), t.valid...),
		assoc:    t.assoc,
		accesses: t.accesses,
		misses:   t.misses,
	}
}

// Restore overwrites the TLB's state with a copy of the snapshot's. The
// target must have the same geometry.
func (t *TLB) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("tlb: restore from nil snapshot")
	}
	if len(s.pages) != len(t.pages) || s.assoc != t.assoc {
		return fmt.Errorf("tlb: restore geometry mismatch: %d entries/%d-way into %d entries/%d-way",
			len(s.pages), s.assoc, len(t.pages), t.assoc)
	}
	copy(t.pages, s.pages)
	copy(t.valid, s.valid)
	t.accesses = s.accesses
	t.misses = s.misses
	return nil
}

// HierarchySnapshot is a deep copy of a two-level translation hierarchy.
type HierarchySnapshot struct {
	itlb, dtlb, l2 *Snapshot
}

// Snapshot captures all three TLBs.
func (h *Hierarchy) Snapshot() *HierarchySnapshot {
	return &HierarchySnapshot{
		itlb: h.itlb.Snapshot(),
		dtlb: h.dtlb.Snapshot(),
		l2:   h.l2.Snapshot(),
	}
}

// Restore overwrites all three TLBs from the snapshot.
func (h *Hierarchy) Restore(s *HierarchySnapshot) error {
	if s == nil {
		return fmt.Errorf("tlb: restore hierarchy from nil snapshot")
	}
	if err := h.itlb.Restore(s.itlb); err != nil {
		return err
	}
	if err := h.dtlb.Restore(s.dtlb); err != nil {
		return err
	}
	return h.l2.Restore(s.l2)
}
