// Package tlb models the translation hierarchy of the simulated machine
// (paper Section 5): 128-entry 2-way set-associative primary instruction
// and data TLBs backed by a 2K-entry unified secondary TLB. A primary
// miss that hits in the secondary costs a small refill; a secondary miss
// costs a software table walk. The timing model charges those penalties;
// this package only tracks hit/miss state.
package tlb

import "repro/internal/isa"

// PageBits is log2 of the page size. SPARC solaris uses 8 KB base pages.
const PageBits = 13

// Page is a virtual page number.
type Page uint64

// PageOf returns the page containing addr.
func PageOf(addr isa.Addr) Page {
	return Page(uint64(addr) >> PageBits)
}

// Config sizes one TLB.
type Config struct {
	Entries int
	Assoc   int
}

// TLB is one translation buffer with LRU replacement. Not safe for
// concurrent use.
//
// Sets live in two flat parallel arrays (page tags and valid bits,
// assoc entries per set, MRU first) rather than per-set slices: the
// lookup runs on every simulated instruction fetch and data access, and
// the flat layout removes a pointer indirection and keeps a set's tags
// in one cache line.
type TLB struct {
	pages    []Page
	valid    []bool
	assoc    int
	setMask  uint64
	accesses uint64
	misses   uint64
}

// New builds a TLB, panicking on invalid sizing.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		panic("tlb: entries must be a positive multiple of associativity")
	}
	n := cfg.Entries / cfg.Assoc
	if n&(n-1) != 0 {
		panic("tlb: number of sets must be a power of two")
	}
	return &TLB{
		pages:   make([]Page, cfg.Entries),
		valid:   make([]bool, cfg.Entries),
		assoc:   cfg.Assoc,
		setMask: uint64(n - 1),
	}
}

// Access looks up page p, filling on miss, and reports whether it hit.
func (t *TLB) Access(p Page) bool {
	t.accesses++
	base := int(uint64(p)&t.setMask) * t.assoc
	for i := 0; i < t.assoc; i++ {
		if t.pages[base+i] == p && t.valid[base+i] {
			// Promote to MRU.
			copy(t.pages[base+1:base+i+1], t.pages[base:base+i])
			copy(t.valid[base+1:base+i+1], t.valid[base:base+i])
			t.pages[base], t.valid[base] = p, true
			return true
		}
	}
	t.misses++
	// Fill, evicting LRU (last slot).
	copy(t.pages[base+1:base+t.assoc], t.pages[base:base+t.assoc-1])
	copy(t.valid[base+1:base+t.assoc], t.valid[base:base+t.assoc-1])
	t.pages[base], t.valid[base] = p, true
	return false
}

// Fill installs page p at the MRU position without charging an access
// or a miss: prefetch-triggered fills are not demand lookups, so they
// must not perturb the hit/miss statistics. If p is already present it
// is promoted.
func (t *TLB) Fill(p Page) {
	base := int(uint64(p)&t.setMask) * t.assoc
	for i := 0; i < t.assoc; i++ {
		if t.pages[base+i] == p && t.valid[base+i] {
			copy(t.pages[base+1:base+i+1], t.pages[base:base+i])
			copy(t.valid[base+1:base+i+1], t.valid[base:base+i])
			t.pages[base], t.valid[base] = p, true
			return
		}
	}
	copy(t.pages[base+1:base+t.assoc], t.pages[base:base+t.assoc-1])
	copy(t.valid[base+1:base+t.assoc], t.valid[base:base+t.assoc-1])
	t.pages[base], t.valid[base] = p, true
}

// Probe reports whether page p is present without side effects.
func (t *TLB) Probe(p Page) bool {
	base := int(uint64(p)&t.setMask) * t.assoc
	for i := 0; i < t.assoc; i++ {
		if t.pages[base+i] == p && t.valid[base+i] {
			return true
		}
	}
	return false
}

// Accesses returns the number of lookups performed.
func (t *TLB) Accesses() uint64 { return t.accesses }

// Misses returns the number of lookups that missed.
func (t *TLB) Misses() uint64 { return t.misses }

// Reset invalidates all entries and clears statistics.
func (t *TLB) Reset() {
	clear(t.pages)
	clear(t.valid)
	t.accesses = 0
	t.misses = 0
}

// HierarchyConfig sizes the full translation hierarchy.
type HierarchyConfig struct {
	ITLB    Config
	DTLB    Config
	Unified Config
	// RefillCycles is charged for a primary miss that hits in the
	// secondary; WalkCycles for a secondary miss.
	RefillCycles uint64
	WalkCycles   uint64
}

// DefaultHierarchyConfig returns the paper's configuration with typical
// penalty choices.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		ITLB:         Config{Entries: 128, Assoc: 2},
		DTLB:         Config{Entries: 128, Assoc: 2},
		Unified:      Config{Entries: 2048, Assoc: 4},
		RefillCycles: 10,
		WalkCycles:   120,
	}
}

// Hierarchy is the two-level translation system of one core.
type Hierarchy struct {
	itlb, dtlb, l2 *TLB
	refill, walk   uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		itlb:   New(cfg.ITLB),
		dtlb:   New(cfg.DTLB),
		l2:     New(cfg.Unified),
		refill: cfg.RefillCycles,
		walk:   cfg.WalkCycles,
	}
}

// TranslateI performs an instruction-side translation of addr and returns
// the cycle penalty (0 on a primary hit).
func (h *Hierarchy) TranslateI(addr isa.Addr) uint64 {
	return h.translate(h.itlb, PageOf(addr))
}

// TranslateD performs a data-side translation of addr and returns the
// cycle penalty.
func (h *Hierarchy) TranslateD(addr isa.Addr) uint64 {
	return h.translate(h.dtlb, PageOf(addr))
}

func (h *Hierarchy) translate(primary *TLB, p Page) uint64 {
	if primary.Access(p) {
		return 0
	}
	if h.l2.Access(p) {
		return h.refill
	}
	return h.walk
}

// PrefetchFillI installs the translation for an instruction prefetch
// address ahead of demand (the prefetch-triggered I-TLB fill of the
// co-design axis). With secondaryOnly the translation lands only in the
// unified secondary TLB — a later demand miss still pays the refill but
// skips the page walk; otherwise it also fills the primary I-TLB. It
// reports whether any structure was actually filled (the translation
// was not already resident where the policy wanted it), without
// touching demand hit/miss statistics.
func (h *Hierarchy) PrefetchFillI(addr isa.Addr, secondaryOnly bool) bool {
	p := PageOf(addr)
	filled := false
	if !h.l2.Probe(p) {
		h.l2.Fill(p)
		filled = true
	}
	if !secondaryOnly && !h.itlb.Probe(p) {
		h.itlb.Fill(p)
		filled = true
	}
	return filled
}

// ITLB returns the primary instruction TLB (stats access).
func (h *Hierarchy) ITLB() *TLB { return h.itlb }

// DTLB returns the primary data TLB.
func (h *Hierarchy) DTLB() *TLB { return h.dtlb }

// Unified returns the secondary TLB.
func (h *Hierarchy) Unified() *TLB { return h.l2 }

// Reset clears all three TLBs.
func (h *Hierarchy) Reset() {
	h.itlb.Reset()
	h.dtlb.Reset()
	h.l2.Reset()
}
