// Package tlb models the translation hierarchy of the simulated machine
// (paper Section 5): 128-entry 2-way set-associative primary instruction
// and data TLBs backed by a 2K-entry unified secondary TLB. A primary
// miss that hits in the secondary costs a small refill; a secondary miss
// costs a software table walk. The timing model charges those penalties;
// this package only tracks hit/miss state.
package tlb

import "repro/internal/isa"

// PageBits is log2 of the page size. SPARC solaris uses 8 KB base pages.
const PageBits = 13

// Page is a virtual page number.
type Page uint64

// PageOf returns the page containing addr.
func PageOf(addr isa.Addr) Page {
	return Page(uint64(addr) >> PageBits)
}

// Config sizes one TLB.
type Config struct {
	Entries int
	Assoc   int
}

// TLB is one translation buffer with LRU replacement. Not safe for
// concurrent use.
type TLB struct {
	sets     [][]entry
	setMask  uint64
	accesses uint64
	misses   uint64
}

type entry struct {
	page  Page
	valid bool
}

// New builds a TLB, panicking on invalid sizing.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		panic("tlb: entries must be a positive multiple of associativity")
	}
	n := cfg.Entries / cfg.Assoc
	if n&(n-1) != 0 {
		panic("tlb: number of sets must be a power of two")
	}
	sets := make([][]entry, n)
	backing := make([]entry, cfg.Entries)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &TLB{sets: sets, setMask: uint64(n - 1)}
}

// Access looks up page p, filling on miss, and reports whether it hit.
func (t *TLB) Access(p Page) bool {
	t.accesses++
	set := t.sets[uint64(p)&t.setMask]
	for i := range set {
		if set[i].valid && set[i].page == p {
			// Promote to MRU.
			e := set[i]
			copy(set[1:i+1], set[0:i])
			set[0] = e
			return true
		}
	}
	t.misses++
	// Fill, evicting LRU (last slot).
	copy(set[1:], set[:len(set)-1])
	set[0] = entry{page: p, valid: true}
	return false
}

// Probe reports whether page p is present without side effects.
func (t *TLB) Probe(p Page) bool {
	set := t.sets[uint64(p)&t.setMask]
	for i := range set {
		if set[i].valid && set[i].page == p {
			return true
		}
	}
	return false
}

// Accesses returns the number of lookups performed.
func (t *TLB) Accesses() uint64 { return t.accesses }

// Misses returns the number of lookups that missed.
func (t *TLB) Misses() uint64 { return t.misses }

// Reset invalidates all entries and clears statistics.
func (t *TLB) Reset() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
	t.accesses = 0
	t.misses = 0
}

// HierarchyConfig sizes the full translation hierarchy.
type HierarchyConfig struct {
	ITLB    Config
	DTLB    Config
	Unified Config
	// RefillCycles is charged for a primary miss that hits in the
	// secondary; WalkCycles for a secondary miss.
	RefillCycles uint64
	WalkCycles   uint64
}

// DefaultHierarchyConfig returns the paper's configuration with typical
// penalty choices.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		ITLB:         Config{Entries: 128, Assoc: 2},
		DTLB:         Config{Entries: 128, Assoc: 2},
		Unified:      Config{Entries: 2048, Assoc: 4},
		RefillCycles: 10,
		WalkCycles:   120,
	}
}

// Hierarchy is the two-level translation system of one core.
type Hierarchy struct {
	itlb, dtlb, l2 *TLB
	refill, walk   uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		itlb:   New(cfg.ITLB),
		dtlb:   New(cfg.DTLB),
		l2:     New(cfg.Unified),
		refill: cfg.RefillCycles,
		walk:   cfg.WalkCycles,
	}
}

// TranslateI performs an instruction-side translation of addr and returns
// the cycle penalty (0 on a primary hit).
func (h *Hierarchy) TranslateI(addr isa.Addr) uint64 {
	return h.translate(h.itlb, PageOf(addr))
}

// TranslateD performs a data-side translation of addr and returns the
// cycle penalty.
func (h *Hierarchy) TranslateD(addr isa.Addr) uint64 {
	return h.translate(h.dtlb, PageOf(addr))
}

func (h *Hierarchy) translate(primary *TLB, p Page) uint64 {
	if primary.Access(p) {
		return 0
	}
	if h.l2.Access(p) {
		return h.refill
	}
	return h.walk
}

// ITLB returns the primary instruction TLB (stats access).
func (h *Hierarchy) ITLB() *TLB { return h.itlb }

// DTLB returns the primary data TLB.
func (h *Hierarchy) DTLB() *TLB { return h.dtlb }

// Unified returns the secondary TLB.
func (h *Hierarchy) Unified() *TLB { return h.l2 }

// Reset clears all three TLBs.
func (h *Hierarchy) Reset() {
	h.itlb.Reset()
	h.dtlb.Reset()
	h.l2.Reset()
}
