package tlb

import (
	"testing"

	"repro/internal/isa"
)

// pageAddr returns an address inside page p.
func pageAddr(p uint64) isa.Addr { return isa.Addr(p << PageBits) }

func TestFillDoesNotTouchStats(t *testing.T) {
	tl := New(Config{Entries: 8, Assoc: 2})
	tl.Fill(Page(1))
	tl.Fill(Page(1)) // re-fill promotes, still no stats
	if tl.Accesses() != 0 || tl.Misses() != 0 {
		t.Fatalf("accesses=%d misses=%d after Fill, want 0/0", tl.Accesses(), tl.Misses())
	}
	if !tl.Probe(Page(1)) {
		t.Fatal("filled page not resident")
	}
	// The demand access that follows is a hit thanks to the fill.
	if !tl.Access(Page(1)) {
		t.Fatal("demand access after fill missed")
	}
	if tl.Accesses() != 1 || tl.Misses() != 0 {
		t.Fatalf("accesses=%d misses=%d, want 1/0", tl.Accesses(), tl.Misses())
	}
}

func TestFillEvictsLRU(t *testing.T) {
	tl := New(Config{Entries: 2, Assoc: 2}) // one set, two ways
	tl.Fill(Page(0))
	tl.Fill(Page(1))
	tl.Fill(Page(0)) // promote 0 to MRU; 1 becomes LRU
	tl.Fill(Page(2)) // evicts 1
	if tl.Probe(Page(1)) {
		t.Fatal("LRU page survived fill eviction")
	}
	if !tl.Probe(Page(0)) || !tl.Probe(Page(2)) {
		t.Fatal("resident pages missing")
	}
}

func TestPrefetchFillIPrimary(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	if !h.PrefetchFillI(pageAddr(7), false) {
		t.Fatal("first prefetch fill reported nothing installed")
	}
	// Demand translation now free: primary hit.
	if pen := h.TranslateI(pageAddr(7)); pen != 0 {
		t.Fatalf("post-fill translate penalty = %d, want 0", pen)
	}
	// Re-fill of a resident translation installs nothing.
	if h.PrefetchFillI(pageAddr(7), false) {
		t.Fatal("re-fill of resident translation claimed to install")
	}
	// Demand stats untouched by fills: one access, zero misses.
	if a, m := h.ITLB().Accesses(), h.ITLB().Misses(); a != 1 || m != 0 {
		t.Fatalf("itlb accesses=%d misses=%d, want 1/0", a, m)
	}
}

func TestPrefetchFillISecondaryOnly(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	if !h.PrefetchFillI(pageAddr(9), true) {
		t.Fatal("secondary-only fill reported nothing installed")
	}
	if h.ITLB().Probe(PageOf(pageAddr(9))) {
		t.Fatal("secondary-only fill leaked into the primary I-TLB")
	}
	// Demand translation pays the refill (secondary hit), not the walk.
	if pen := h.TranslateI(pageAddr(9)); pen != cfg.RefillCycles {
		t.Fatalf("penalty = %d, want refill %d", pen, cfg.RefillCycles)
	}
	// A second secondary-only fill for the same page is a no-op.
	if h.PrefetchFillI(pageAddr(9), true) {
		t.Fatal("repeat secondary-only fill claimed to install")
	}
}
