package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 {
		t.Fatal("page of 0")
	}
	if PageOf(8191) != 0 {
		t.Fatal("page of 8191")
	}
	if PageOf(8192) != 1 {
		t.Fatal("page of 8192")
	}
	if PageOf(3*8192+17) != 3 {
		t.Fatal("page of 3 pages + 17")
	}
}

func TestNewPanics(t *testing.T) {
	bad := []Config{
		{Entries: 0, Assoc: 2},
		{Entries: 128, Assoc: 0},
		{Entries: 130, Assoc: 4}, // not divisible
		{Entries: 96, Assoc: 2},  // 48 sets, not pow2
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	tl := New(Config{Entries: 8, Assoc: 2})
	if tl.Access(5) {
		t.Fatal("cold TLB hit")
	}
	if !tl.Access(5) {
		t.Fatal("warm TLB missed")
	}
	if tl.Accesses() != 2 || tl.Misses() != 1 {
		t.Fatalf("counters = %d/%d", tl.Accesses(), tl.Misses())
	}
}

func TestLRUWithinSet(t *testing.T) {
	tl := New(Config{Entries: 8, Assoc: 2}) // 4 sets
	// Pages 0, 4, 8 share set 0.
	tl.Access(0)
	tl.Access(4)
	tl.Access(0) // protect 0
	tl.Access(8) // evicts 4
	if !tl.Probe(0) || tl.Probe(4) || !tl.Probe(8) {
		t.Fatal("LRU within set wrong")
	}
}

func TestProbeNoFill(t *testing.T) {
	tl := New(Config{Entries: 8, Assoc: 2})
	if tl.Probe(3) {
		t.Fatal("probe hit cold TLB")
	}
	if tl.Accesses() != 0 {
		t.Fatal("probe counted as access")
	}
	if tl.Probe(3) {
		t.Fatal("probe filled the TLB")
	}
}

func TestReset(t *testing.T) {
	tl := New(Config{Entries: 8, Assoc: 2})
	tl.Access(1)
	tl.Reset()
	if tl.Probe(1) || tl.Accesses() != 0 || tl.Misses() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHierarchyPenalties(t *testing.T) {
	cfg := HierarchyConfig{
		ITLB:         Config{Entries: 4, Assoc: 2},
		DTLB:         Config{Entries: 4, Assoc: 2},
		Unified:      Config{Entries: 64, Assoc: 4},
		RefillCycles: 10,
		WalkCycles:   200,
	}
	h := NewHierarchy(cfg)
	addr := isa.Addr(42 << PageBits)
	// Cold: misses everywhere -> walk.
	if got := h.TranslateI(addr); got != 200 {
		t.Fatalf("cold translate penalty = %d, want 200", got)
	}
	// Warm primary: free.
	if got := h.TranslateI(addr); got != 0 {
		t.Fatalf("warm translate penalty = %d, want 0", got)
	}
	// Thrash the tiny primary, keeping the secondary warm: refill cost.
	for p := 0; p < 16; p++ {
		h.TranslateI(isa.Addr(p) << PageBits)
	}
	if got := h.TranslateI(addr); got != 10 {
		t.Fatalf("secondary-hit penalty = %d, want 10", got)
	}
}

func TestHierarchyIDSeparation(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	a := isa.Addr(7 << PageBits)
	h.TranslateI(a)
	// Data-side lookup of the same page must miss the (separate) DTLB but
	// hit the shared secondary.
	if got := h.TranslateD(a); got != 10 {
		t.Fatalf("DTLB penalty = %d, want secondary refill 10", got)
	}
	if h.ITLB().Misses() != 1 || h.DTLB().Misses() != 1 {
		t.Fatalf("primary misses = %d/%d", h.ITLB().Misses(), h.DTLB().Misses())
	}
	if h.Unified().Misses() != 1 {
		t.Fatalf("unified misses = %d", h.Unified().Misses())
	}
	h.Reset()
	if h.ITLB().Accesses() != 0 || h.Unified().Accesses() != 0 {
		t.Fatal("hierarchy reset incomplete")
	}
}

// Property: hit rate of repeated single-page access is (n-1)/n.
func TestRepeatedAccessProperty(t *testing.T) {
	f := func(pageRaw uint32, nRaw uint8) bool {
		tl := New(Config{Entries: 128, Assoc: 2})
		p := Page(pageRaw)
		n := int(nRaw%50) + 1
		misses := 0
		for i := 0; i < n; i++ {
			if !tl.Access(p) {
				misses++
			}
		}
		return misses == 1 && tl.Accesses() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: working set within capacity never misses after one pass.
func TestCapacityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		tl := New(Config{Entries: 128, Assoc: 2})
		base := Page(seed) * 1000
		// 64 pages with distinct set mappings fit comfortably.
		for p := Page(0); p < 64; p++ {
			tl.Access(base + p)
		}
		for p := Page(0); p < 64; p++ {
			if !tl.Probe(base + p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranslate(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	for i := 0; i < b.N; i++ {
		h.TranslateI(isa.Addr(i&0xfff) << PageBits)
	}
}
