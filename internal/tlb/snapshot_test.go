package tlb

import (
	"testing"

	"repro/internal/isa"
)

func walk(h *Hierarchy, seed uint64, n int) (cycles uint64) {
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := isa.Addr(x >> 20 & 0xFFFFF000)
		if x&1 == 0 {
			cycles += h.TranslateI(addr)
		} else {
			cycles += h.TranslateD(addr)
		}
	}
	return
}

func TestHierarchySnapshotRoundTrip(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	a := NewHierarchy(cfg)
	walk(a, 42, 400)
	snap := a.Snapshot()

	b := NewHierarchy(cfg)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got, want := walk(b, 7, 400), walk(a, 7, 400); got != want {
		t.Fatalf("restored hierarchy diverged: %d vs %d translation cycles", got, want)
	}
	if b.ITLB().Accesses() == 0 || b.ITLB().Accesses() != a.ITLB().Accesses() {
		t.Fatalf("ITLB counters lost: %d vs %d", b.ITLB().Accesses(), a.ITLB().Accesses())
	}

	// Pristine snapshot: restore again after both diverged.
	c := NewHierarchy(cfg)
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	d := NewHierarchy(cfg)
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if walk(c, 7, 400) != walk(d, 7, 400) {
		t.Fatal("snapshot mutated by use")
	}
}

func TestTLBSnapshotGeometryMismatch(t *testing.T) {
	small := New(Config{Entries: 16, Assoc: 4})
	big := New(Config{Entries: 64, Assoc: 4})
	if err := big.Restore(small.Snapshot()); err == nil {
		t.Error("entry-count mismatch accepted")
	}
	if err := small.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
