package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
)

// newDistServer mounts the coordinator exactly as the daemon does:
// under /v1/dist on a fresh mux.
func newDistServer(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/v1/dist/", http.StripPrefix("/v1/dist", Handler(c)))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestWorker(srv *httptest.Server, name string) *Worker {
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	return &Worker{Client: c, Name: name, PollInterval: 20 * time.Millisecond}
}

// verifyJournal re-opens the sweep's journal from disk and checks it
// holds every grid point's key exactly once (the journal is
// content-addressed by key, so presence + count proves no gaps and no
// double entries).
func verifyJournal(t *testing.T, dir string, spec sweep.Spec, v SweepView) {
	t.Helper()
	j, err := sweep.OpenJournal(filepath.Join(dir, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	n, err := j.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != v.Total {
		t.Fatalf("journal holds %d points, want exactly %d", n, v.Total)
	}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		key, err := p.Key(v.WarmInstrs, v.MeasureInstrs, v.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if res, ok := j.Get(key); !ok {
			t.Fatalf("point %d missing from journal", p.Index)
		} else if res.IPC <= 0 || res.Instructions == 0 {
			t.Fatalf("point %d journaled empty: %+v", p.Index, res)
		}
	}
}

// TestDistributedSweepSurvivesWorkerKill is the subsystem's headline
// fault-tolerance guarantee: one of three workers dies mid-shard, its
// lease expires, the dangling points reinject, and the sweep still
// finishes with every grid point journaled exactly once.
func TestDistributedSweepSurvivesWorkerKill(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{
		LeaseTTL:          250 * time.Millisecond,
		ShardSize:         2,
		JournalDir:        dir,
		MaxWorkerFailures: 100, // the kill must not quarantine anyone
	})
	srv := newDistServer(t, c)
	spec := testSpec()
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the victim runs alone, so it is guaranteed to hold a
	// 2-point lease; it is killed right after delivering its first
	// point, leaving the second leased-but-undelivered.
	victimCtx, kill := context.WithCancel(context.Background())
	victim := newTestWorker(srv, "victim")
	victim.OnPoint = func(sweep.PointResult) { kill() }
	_ = victim.Run(victimCtx) // returns once killed
	if got, _ := c.Sweep(v.ID); got.Completed != 1 {
		t.Fatalf("victim delivered %d points before dying, want exactly 1", got.Completed)
	}

	// Phase 2: two healthy workers finish the sweep, picking up the
	// victim's dangling point once its lease lapses.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"survivor-1", "survivor-2"} {
		w := newTestWorker(srv, name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	final, err := c.Wait(ctx, v.ID)
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if final.State != SweepCompleted || final.Completed != v.Total {
		t.Fatalf("sweep ended %s with %d/%d points (%s)", final.State, final.Completed, v.Total, final.Error)
	}
	s := c.Snapshot()
	if s.LeasesExpired < 1 || s.PointsReinjected < 1 {
		t.Fatalf("the kill left no trace: %+v", s)
	}
	if s.PointsCompleted != uint64(v.Total) {
		t.Fatalf("%d point deliveries counted, want exactly %d (idempotency)", s.PointsCompleted, v.Total)
	}
	verifyJournal(t, dir, spec, final)
	if data, _, ok := c.Artifact(v.ID, "results.json"); !ok || len(data) == 0 {
		t.Fatal("completed sweep has no results.json artifact")
	}
}

// TestCoordinatorRestartDoesNotRecompute kills a run mid-sweep, brings
// up a brand-new coordinator over the same journal root, and proves via
// the worker's engine counters that only the unfinished points are
// simulated in the second life.
func TestCoordinatorRestartDoesNotRecompute(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	// First life: a lone worker delivers a few points, then everything
	// (worker and coordinator) goes down.
	a := New(Config{LeaseTTL: 10 * time.Second, ShardSize: 1, JournalDir: dir})
	v, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	srvA := newDistServer(t, a)
	killCtx, kill := context.WithCancel(context.Background())
	var delivered int32
	w1 := newTestWorker(srvA, "first-life")
	w1.OnPoint = func(sweep.PointResult) {
		if atomic.AddInt32(&delivered, 1) == 2 {
			kill()
		}
	}
	_ = w1.Run(killCtx)
	srvA.Close()

	// The journal is the only survivor; read how far the first life got.
	j, err := sweep.OpenJournal(filepath.Join(dir, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	journaled, err := j.Len()
	if err != nil {
		t.Fatal(err)
	}
	if journaled == 0 || journaled >= v.Total {
		t.Fatalf("first life journaled %d of %d points, want a strict partial", journaled, v.Total)
	}

	// Second life: new coordinator, same journal root, fresh worker with
	// cold engines.
	b := New(Config{LeaseTTL: 10 * time.Second, ShardSize: 1, JournalDir: dir})
	resumed, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ID != v.ID || resumed.Recovered != journaled || resumed.Completed != journaled {
		t.Fatalf("resume view = %+v, want %d recovered under the same id", resumed, journaled)
	}
	srvB := newDistServer(t, b)
	w2 := newTestWorker(srvB, "second-life")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w2.Run(ctx)
	}()
	final, err := b.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done

	if final.State != SweepCompleted || final.Completed != v.Total || final.Recovered != journaled {
		t.Fatalf("resumed sweep ended %+v", final)
	}
	// The zero-recompute guarantee, asserted the hard way: the second
	// life's engines ran exactly the points the journal lacked.
	if c2 := w2.EngineCounters(); c2.Simulations != uint64(v.Total-journaled) {
		t.Fatalf("second life simulated %d points, want exactly %d (total %d - journaled %d)",
			c2.Simulations, v.Total-journaled, v.Total, journaled)
	}
	verifyJournal(t, dir, spec, final)
}
