package dist

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/sweep"
)

// Handler exposes the coordinator over HTTP. The service layer mounts
// it under /v1/dist (see service.Handler); paths here are relative to
// that prefix:
//
//	POST /workers                worker registration -> {id, lease_ttl_ms}
//	POST /sweeps                 submit a sweep.Spec for distributed
//	                             execution; 202 with progress, 200 when
//	                             an identical sweep already exists
//	GET  /sweeps                 list distributed sweeps
//	GET  /sweeps/{id}            sweep progress (pending/leased/completed)
//	GET  /sweeps/{id}/artifacts/{name}
//	                             download a completed sweep's artifact
//	POST /sweeps/{id}/points     idempotent point submission
//	POST /leases                 acquire the next shard lease (204 = no
//	                             pending work, 403 = quarantined)
//	POST /leases/{id}/renew      heartbeat (410 = lease gone)
//	POST /leases/{id}/complete   close a fully-delivered lease
//	POST /leases/{id}/fail       abandon a lease after a worker error
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /workers", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		if err := decode(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, c.RegisterWorker(req.Name))
	})

	mux.HandleFunc("POST /sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec sweep.Spec
		if err := decode(r, &spec); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		v, err := c.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		status := http.StatusAccepted
		if v.State != SweepRunning {
			status = http.StatusOK
		}
		writeJSON(w, status, v)
	})

	mux.HandleFunc("GET /sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Sweeps []SweepView `json:"sweeps"`
		}{c.Sweeps()})
	})

	mux.HandleFunc("GET /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := c.Sweep(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown sweep")
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("GET /sweeps/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		id, name := r.PathValue("id"), r.PathValue("name")
		v, ok := c.Sweep(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown sweep")
			return
		}
		data, ct, ok := c.Artifact(id, name)
		if !ok {
			if v.State == SweepRunning {
				httpError(w, http.StatusConflict, "sweep still running")
				return
			}
			httpError(w, http.StatusNotFound, "unknown artifact (want one of "+strings.Join(v.Artifacts, ", ")+")")
			return
		}
		w.Header().Set("Content-Type", ct)
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("POST /sweeps/{id}/points", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string            `json:"worker_id"`
			Result   sweep.PointResult `json:"result"`
		}
		if err := decode(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		dup, err := c.SubmitPoint(r.PathValue("id"), req.WorkerID, req.Result)
		switch {
		case errors.Is(err, ErrUnknownSweep):
			httpError(w, http.StatusNotFound, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Duplicate bool `json:"duplicate"`
		}{dup})
	})

	mux.HandleFunc("POST /leases", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string `json:"worker_id"`
		}
		if err := decode(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		l, err := c.Acquire(req.WorkerID)
		switch {
		case errors.Is(err, ErrUnknownWorker):
			httpError(w, http.StatusNotFound, err.Error())
			return
		case errors.Is(err, ErrQuarantined):
			httpError(w, http.StatusForbidden, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		case l == nil:
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})

	leaseOp := func(op func(leaseID, workerID string) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				WorkerID string `json:"worker_id"`
				Error    string `json:"error,omitempty"`
			}
			if err := decode(r, &req); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			err := op(r.PathValue("id"), req.WorkerID)
			if errors.Is(err, ErrLeaseGone) {
				httpError(w, http.StatusGone, err.Error())
				return
			}
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, struct {
				OK bool `json:"ok"`
			}{true})
		}
	}
	mux.HandleFunc("POST /leases/{id}/renew", leaseOp(c.Renew))
	mux.HandleFunc("POST /leases/{id}/complete", leaseOp(c.Complete))
	mux.HandleFunc("POST /leases/{id}/fail", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string `json:"worker_id"`
			Error    string `json:"error,omitempty"`
		}
		if err := decode(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		err := c.Fail(r.PathValue("id"), req.WorkerID, req.Error)
		if errors.Is(err, ErrLeaseGone) {
			httpError(w, http.StatusGone, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, struct {
			OK bool `json:"ok"`
		}{true})
	})

	return mux
}

// decode parses a JSON request body strictly.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errors.New("bad request body: " + err.Error())
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
