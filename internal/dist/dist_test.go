package dist

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// testSpec pins tiny budgets so any test that really simulates stays
// fast; unit tests here fabricate results and never touch an engine.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Name:          "dist-test",
		Schemes:       []string{"discontinuity"},
		Workloads:     []string{"DB", "Web"},
		Cores:         []int{1},
		TableEntries:  []int{128, 256},
		WarmInstrs:    20_000,
		MeasureInstrs: 50_000,
		Seed:          1,
	}
}

// fakeResult builds a plausible point result without running the
// simulator (the coordinator does not inspect metric values).
func fakeResult(t *testing.T, p sweep.Point, warm, measure, seed uint64) sweep.PointResult {
	t.Helper()
	key, err := p.Key(warm, measure, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.PointResult{
		Key:          key,
		Point:        p,
		IPC:          1 + float64(p.Index)*0.01,
		Instructions: measure,
		Cycles:       measure,
	}
}

// drain acquires and fabricates results until the coordinator has no
// pending work, completing every lease.
func drain(t *testing.T, c *Coordinator, workerID string) {
	t.Helper()
	for {
		l, err := c.Acquire(workerID)
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			return
		}
		for _, p := range l.Points {
			if _, err := c.SubmitPoint(l.SweepID, workerID, fakeResult(t, p, l.WarmInstrs, l.MeasureInstrs, l.Seed)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Complete(l.ID, workerID); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubmitExpandsAndDedups(t *testing.T) {
	c := New(Config{})
	spec := testSpec()
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != SweepRunning || v.Total != len(points) || v.Pending != len(points) {
		t.Fatalf("fresh sweep view = %+v, want running with %d pending", v, len(points))
	}
	if v.WarmInstrs != 20_000 || v.MeasureInstrs != 50_000 || v.Seed != 1 {
		t.Fatalf("budgets not echoed: %+v", v)
	}
	again, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != v.ID {
		t.Fatalf("identical spec got a new sweep: %s vs %s", again.ID, v.ID)
	}
	if s := c.Snapshot(); s.SweepsSubmitted != 1 {
		t.Fatalf("resubmission counted as a new sweep: %+v", s)
	}
}

func TestLeaseLifecycleCompletesSweep(t *testing.T) {
	c := New(Config{ShardSize: 2})
	v, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("unit")
	drain(t, c, w.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepCompleted || final.Completed != v.Total {
		t.Fatalf("sweep ended %s with %d/%d points", final.State, final.Completed, v.Total)
	}
	for _, name := range []string{"results.json", "results.csv"} {
		if data, _, ok := c.Artifact(v.ID, name); !ok || len(data) == 0 {
			t.Fatalf("artifact %s missing after completion (have %v)", name, final.Artifacts)
		}
	}
	s := c.Snapshot()
	if s.PointsCompleted != uint64(v.Total) || s.LeasesCompleted == 0 || s.SweepsCompleted != 1 {
		t.Fatalf("lifecycle counters off: %+v", s)
	}
	if s.LeasesOutstanding != 0 {
		t.Fatalf("%d leases still outstanding after drain", s.LeasesOutstanding)
	}
}

func TestSubmitPointIdempotent(t *testing.T) {
	c := New(Config{ShardSize: 1})
	v, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("unit")
	l, err := c.Acquire(w.ID)
	if err != nil || l == nil {
		t.Fatalf("acquire: %v %v", l, err)
	}
	res := fakeResult(t, l.Points[0], l.WarmInstrs, l.MeasureInstrs, l.Seed)
	if dup, err := c.SubmitPoint(l.SweepID, w.ID, res); err != nil || dup {
		t.Fatalf("first delivery: dup=%v err=%v", dup, err)
	}
	if dup, err := c.SubmitPoint(l.SweepID, w.ID, res); err != nil || !dup {
		t.Fatalf("second delivery: dup=%v err=%v, want acknowledged duplicate", dup, err)
	}
	got, _ := c.Sweep(v.ID)
	if got.Completed != 1 {
		t.Fatalf("duplicate delivery double-counted: completed=%d", got.Completed)
	}
	if s := c.Snapshot(); s.PointsDuplicate != 1 || s.PointsCompleted != 1 {
		t.Fatalf("idempotency counters off: %+v", s)
	}
}

func TestSubmitPointRejectsUnknownKeyAndSweep(t *testing.T) {
	c := New(Config{})
	v, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("unit")
	bogus := sweep.PointResult{Key: "not|a|grid|key", IPC: 1}
	if _, err := c.SubmitPoint(v.ID, w.ID, bogus); !errors.Is(err, ErrUnknownPoint) {
		t.Fatalf("foreign key accepted: %v", err)
	}
	if _, err := c.SubmitPoint("no-such-sweep", w.ID, bogus); !errors.Is(err, ErrUnknownSweep) {
		t.Fatalf("unknown sweep accepted: %v", err)
	}
}

func TestExpiredLeaseReinjectsAndLateResultStillCounts(t *testing.T) {
	c := New(Config{LeaseTTL: 20 * time.Millisecond, ShardSize: 2})
	v, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("slow")
	l, err := c.Acquire(w.ID)
	if err != nil || l == nil {
		t.Fatalf("acquire: %v %v", l, err)
	}
	time.Sleep(40 * time.Millisecond) // no heartbeat: lease must lapse

	got, _ := c.Sweep(v.ID) // any public call reaps expired leases
	if got.Pending != v.Total || got.Leased != 0 {
		t.Fatalf("after expiry pending=%d leased=%d, want %d/0", got.Pending, got.Leased, v.Total)
	}
	s := c.Snapshot()
	if s.LeasesExpired != 1 || s.PointsReinjected != uint64(len(l.Points)) {
		t.Fatalf("expiry counters off: %+v", s)
	}
	if err := c.Renew(l.ID, w.ID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("renewing an expired lease: %v, want ErrLeaseGone", err)
	}

	// The slow worker finished a point anyway: idempotent submission is
	// lease-independent, so the work is kept and leaves the queue.
	res := fakeResult(t, l.Points[0], l.WarmInstrs, l.MeasureInstrs, l.Seed)
	if dup, err := c.SubmitPoint(l.SweepID, w.ID, res); err != nil || dup {
		t.Fatalf("late delivery: dup=%v err=%v", dup, err)
	}
	got, _ = c.Sweep(v.ID)
	if got.Completed != 1 || got.Pending != v.Total-1 {
		t.Fatalf("late delivery not absorbed: completed=%d pending=%d", got.Completed, got.Pending)
	}

	// A fresh worker draining afterwards must see each remaining point
	// exactly once.
	w2 := c.RegisterWorker("fresh")
	drain(t, c, w2.ID)
	final, _ := c.Sweep(v.ID)
	if final.State != SweepCompleted || final.Completed != v.Total {
		t.Fatalf("sweep after reinjection: %s %d/%d", final.State, final.Completed, v.Total)
	}
	if s := c.Snapshot(); s.PointsCompleted != uint64(v.Total) || s.PointsDuplicate != 0 {
		t.Fatalf("reinjected points recounted: %+v", s)
	}
}

func TestRenewKeepsLeaseAlive(t *testing.T) {
	c := New(Config{LeaseTTL: 200 * time.Millisecond, ShardSize: 2})
	v, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("heartbeat")
	l, err := c.Acquire(w.ID)
	if err != nil || l == nil {
		t.Fatalf("acquire: %v %v", l, err)
	}
	for i := 0; i < 4; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := c.Renew(l.ID, w.ID); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if got, _ := c.Sweep(v.ID); got.Leased != len(l.Points) {
		t.Fatalf("lease lapsed despite heartbeats: %+v", got)
	}
}

func TestRepeatedFailuresQuarantineWorker(t *testing.T) {
	c := New(Config{MaxWorkerFailures: 2, MaxPointFailures: 100, ShardSize: 1})
	if _, err := c.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}
	bad := c.RegisterWorker("bad")
	for i := 0; i < 2; i++ {
		l, err := c.Acquire(bad.ID)
		if err != nil || l == nil {
			t.Fatalf("acquire %d: %v %v", i, l, err)
		}
		if err := c.Fail(l.ID, bad.ID, "synthetic"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Acquire(bad.ID); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("third acquire after 2 failures: %v, want ErrQuarantined", err)
	}
	if s := c.Snapshot(); s.WorkersQuarantined != 1 {
		t.Fatalf("quarantine not counted: %+v", s)
	}
	// The sweep itself is unharmed: another worker drains it.
	good := c.RegisterWorker("good")
	drain(t, c, good.ID)
	if s := c.Snapshot(); s.SweepsCompleted != 1 {
		t.Fatalf("sweep did not survive a quarantined worker: %+v", s)
	}
}

func TestPointRetryBudgetFailsSweep(t *testing.T) {
	c := New(Config{MaxPointFailures: 2, MaxWorkerFailures: 100, ShardSize: 1})
	v, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("cursed")
	// ShardSize 1 and a FIFO queue: failing the head point reinjects it
	// at the tail, so fail total+1 leases to lose one point twice.
	for i := 0; i <= v.Total; i++ {
		l, err := c.Acquire(w.ID)
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			break // sweep already failed and dropped its queue
		}
		if err := c.Fail(l.ID, w.ID, "synthetic"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepFailed || final.Error == "" {
		t.Fatalf("sweep = %s (%q), want failed with a reason", final.State, final.Error)
	}
	if l, err := c.Acquire(w.ID); err != nil || l != nil {
		t.Fatalf("failed sweep still leases work: %v %v", l, err)
	}
}

func TestRestartResumesFromJournal(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	a := New(Config{JournalDir: dir, ShardSize: 2})
	v, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := a.RegisterWorker("first-life")
	drain(t, a, w.ID)

	// "Restart": a brand-new coordinator over the same journal root sees
	// the sweep as already complete, with every point recovered.
	b := New(Config{JournalDir: dir})
	got, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != v.ID {
		t.Fatalf("sweep identity not stable across restart: %s vs %s", got.ID, v.ID)
	}
	if got.State != SweepCompleted || got.Recovered != v.Total || got.Completed != v.Total {
		t.Fatalf("restart view = %+v, want completed with %d recovered", got, v.Total)
	}
	if data, _, ok := b.Artifact(got.ID, "results.json"); !ok || len(data) == 0 {
		t.Fatal("restarted coordinator did not rebuild artifacts from the journal")
	}
	if s := b.Snapshot(); s.PointsRecovered != uint64(v.Total) || s.PointsCompleted != 0 {
		t.Fatalf("recovery counters off: %+v", s)
	}
}

func TestWritePromIncludesWorkerSeries(t *testing.T) {
	c := New(Config{ShardSize: 2})
	if _, err := c.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("prom-worker")
	drain(t, c, w.ID)

	var buf bytes.Buffer
	c.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"iprefetchd_dist_leases_granted_total",
		"iprefetchd_dist_points_completed_total",
		"iprefetchd_dist_leases_outstanding 0",
		"iprefetchd_dist_sweeps_running 0",
		`iprefetchd_dist_worker_points_total{worker="` + w.ID + `/prom-worker"}`,
		`iprefetchd_dist_worker_alive{worker="` + w.ID + `/prom-worker"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
