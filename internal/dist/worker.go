package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cmp"
	"repro/internal/corpus"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Worker is the remote execution half of the subsystem: it registers
// with a coordinator, pulls shard leases, runs each point on a local
// memoising sim.Engine (one per budget combination, like the service
// layer), streams every completed point back immediately, and renews
// its lease heartbeat while the shard runs. A worker whose heartbeat
// discovers the lease is gone abandons the shard — the coordinator has
// already reinjected it — and any points it delivered anyway are
// absorbed idempotently.
type Worker struct {
	// Client connects to the coordinator. Required.
	Client *Client
	// Name labels the worker in coordinator logs and metrics.
	Name string
	// Concurrency bounds points simulated in parallel within one lease.
	// Default 1.
	Concurrency int
	// PollInterval is the idle wait between acquire attempts when the
	// coordinator has no pending work. Default 500ms (jittered).
	PollInterval time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// OnPoint, when non-nil, is called after each point is delivered
	// (test and progress hook).
	OnPoint func(res sweep.PointResult)
	// Corpus, when non-nil, is this worker's local trace cache: before
	// running a lease whose points name trace:<id> workloads, the
	// worker fetches any missing container from the coordinator over
	// /v1/corpus, verifies the bytes hash to the requested id, and
	// registers the cache as a replay provider. Without it, trace
	// leases fail (and reinject toward workers that have a cache).
	Corpus *corpus.Store

	mu         sync.Mutex
	id         string
	engines    map[string]*sim.Engine
	registered bool
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// ID returns the coordinator-assigned worker id (empty before Run
// registers).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// engineFor returns (creating if needed) the engine for one budget/seed
// combination.
func (w *Worker) engineFor(warm, measure, seed uint64) *sim.Engine {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.engines == nil {
		w.engines = make(map[string]*sim.Engine)
	}
	k := fmt.Sprintf("%d|%d|%d", warm, measure, seed)
	e, ok := w.engines[k]
	if !ok {
		e = sim.NewEngine(warm, measure, seed)
		w.engines[k] = e
	}
	return e
}

// EngineCounters sums the run-sharing counters across every engine the
// worker instantiated (tests assert recompute-freedom through this).
func (w *Worker) EngineCounters() sim.Counters {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out sim.Counters
	for _, e := range w.engines {
		c := e.Counters()
		out.Simulations += c.Simulations
		out.MemoHits += c.MemoHits
		out.DedupWaits += c.DedupWaits
	}
	return out
}

// Run registers the worker and processes leases until ctx fires or the
// coordinator quarantines it. Transient coordinator failures are
// absorbed by the client's retry budget; only a spent budget or a
// terminal rejection stops the loop.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return errors.New("dist: worker needs a client")
	}
	if w.Corpus != nil {
		w.mu.Lock()
		if !w.registered {
			w.registered = true
			cmp.RegisterTraceProvider(w.Corpus.ReplaySource)
		}
		w.mu.Unlock()
	}
	poll := w.PollInterval
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	reg, err := w.Client.Register(ctx, w.Name)
	if err != nil {
		return fmt.Errorf("dist: register: %w", err)
	}
	w.mu.Lock()
	w.id = reg.ID
	w.mu.Unlock()
	ttl := time.Duration(reg.LeaseTTLMS) * time.Millisecond
	w.logf("dist: worker %s (%s) registered, lease ttl %s", reg.ID, w.Name, ttl)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.Client.Acquire(ctx, reg.ID)
		if err != nil {
			if errors.Is(err, ErrQuarantined) {
				return err
			}
			return fmt.Errorf("dist: acquire: %w", err)
		}
		if lease == nil {
			select {
			case <-time.After(w.Client.jitter(poll)):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if err := w.runLease(ctx, reg.ID, lease, ttl); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("dist: lease %s: %v", lease.ID, err)
		}
	}
}

// runLease simulates one shard under a heartbeat: points run (bounded
// by Concurrency), stream back as they finish, and a renew ticker keeps
// the lease alive. If a renewal reports the lease gone, the remaining
// points are abandoned mid-simulation.
func (w *Worker) runLease(ctx context.Context, workerID string, l *Lease, ttl time.Duration) error {
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat at a third of the TTL so one dropped renewal (absorbed
	// by the client's retries) cannot expire the lease.
	hb := ttl / 3
	if hb <= 0 {
		hb = time.Second
	}
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
				if err := w.Client.Renew(leaseCtx, l.ID, workerID); err != nil {
					if errors.Is(err, ErrLeaseGone) {
						w.logf("dist: lease %s expired under us, abandoning shard", l.ID)
					}
					cancel()
					return
				}
			}
		}
	}()

	// Trace-replay points need their container cached locally before
	// any of them simulate; a fetch failure fails the whole lease so
	// the coordinator reinjects it promptly.
	if err := w.ensureTraces(leaseCtx, l); err != nil {
		cancel()
		hbWG.Wait()
		failCtx, cancelFail := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelFail()
		if ferr := w.Client.Fail(failCtx, l.ID, workerID, err.Error()); ferr != nil && !errors.Is(ferr, ErrLeaseGone) {
			w.logf("dist: report lease %s failure: %v", l.ID, ferr)
		}
		return err
	}

	conc := w.Concurrency
	if conc <= 0 {
		conc = 1
	}
	eng := w.engineFor(l.WarmInstrs, l.MeasureInstrs, l.Seed)
	var firstErr error
	anyFork := false
	for _, p := range l.Points {
		if p.ForkWarm {
			anyFork = true
			break
		}
	}
	if anyFork {
		// Fork-warm shards route through the engine's batching layer so
		// points sharing a warm phase fork from one snapshot; results
		// still stream back individually as each point completes.
		firstErr = w.runBatch(leaseCtx, eng, workerID, l, conc)
	} else {
		sem := make(chan struct{}, conc)
		var wg sync.WaitGroup
		var errMu sync.Mutex
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		for _, p := range l.Points {
			if leaseCtx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(p sweep.Point) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := w.runPoint(leaseCtx, eng, workerID, l, p); err != nil {
					fail(err)
				}
			}(p)
		}
		wg.Wait()
	}
	cancel()
	hbWG.Wait()

	if firstErr != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Report the failure so the coordinator reinjects immediately
		// instead of waiting out the TTL; a dead coordinator just means
		// the TTL path handles it.
		failCtx, cancelFail := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelFail()
		if err := w.Client.Fail(failCtx, l.ID, workerID, firstErr.Error()); err != nil && !errors.Is(err, ErrLeaseGone) {
			w.logf("dist: report lease %s failure: %v", l.ID, err)
		}
		return firstErr
	}
	if err := w.Client.Complete(ctx, l.ID, workerID); err != nil && !errors.Is(err, ErrLeaseGone) {
		return fmt.Errorf("dist: complete lease %s: %w", l.ID, err)
	}
	return nil
}

// ensureTraces makes the local cache hold every trace:<id> entry a
// lease's points replay. It federates at chunk granularity against the
// full replica list — only chunks the cache is missing transfer, so a
// worker that already replayed a near-duplicate trace (same program,
// different seed) pulls a fraction of the bytes — and falls back to the
// whole-container route when a coordinator predates chunk federation.
// Either way every byte is verified against the requested id before it
// may serve simulations.
func (w *Worker) ensureTraces(ctx context.Context, l *Lease) error {
	ids := map[string]bool{}
	for _, p := range l.Points {
		if id, ok := strings.CutPrefix(p.Workload, cmp.TraceWorkloadPrefix); ok {
			ids[id] = true
		}
	}
	if len(ids) == 0 {
		return nil
	}
	if w.Corpus == nil {
		return errors.New("dist: lease replays trace workloads but worker has no corpus cache (set Worker.Corpus)")
	}
	fetcher := &corpus.Fetcher{
		Store: w.Corpus,
		Peers: append([]string{w.Client.BaseURL}, w.Client.FallbackURLs...),
		Logf:  w.Logf,
	}
	for id := range ids {
		if w.Corpus.Has(id) {
			continue
		}
		if err := fetcher.Fetch(ctx, id); err == nil {
			continue
		} else if ctx.Err() != nil {
			return ctx.Err()
		} else {
			w.logf("dist: trace %s: chunk federation failed (%v); falling back to container fetch", id[:12], err)
		}
		rc, err := w.Client.FetchCorpus(ctx, id)
		if err != nil {
			return fmt.Errorf("dist: fetch trace %s: %w", id, err)
		}
		man, err := w.Corpus.Put(rc, "fetch")
		rc.Close()
		if err != nil {
			return fmt.Errorf("dist: cache trace %s: %w", id, err)
		}
		if man.ID != id {
			w.Corpus.Delete(man.ID)
			return fmt.Errorf("dist: trace %s: coordinator served bytes hashing to %s", id, man.ID)
		}
		w.logf("dist: cached trace %s (%d blocks, %d bytes)", id[:12], man.Blocks, man.SizeBytes)
	}
	return nil
}

// runBatch resolves a fork-warm shard through RunBatchContext and
// streams each point back as it completes. Submission failures surface
// as the batch's first error like any simulation failure.
func (w *Worker) runBatch(ctx context.Context, eng *sim.Engine, workerID string, l *Lease, conc int) error {
	specs := make([]sim.RunSpec, len(l.Points))
	keys := make([]string, len(l.Points))
	for i, p := range l.Points {
		key, err := p.Key(l.WarmInstrs, l.MeasureInstrs, l.Seed)
		if err != nil {
			return err
		}
		rs, err := p.RunSpec()
		if err != nil {
			return err
		}
		keys[i], specs[i] = key, rs
	}
	var errMu sync.Mutex
	var submitErr error
	err := eng.RunBatchContext(ctx, specs, conc, func(i int, simRes sim.Result, err error, elapsed time.Duration) {
		if err != nil {
			return // RunBatchContext returns the first error itself
		}
		p := l.Points[i]
		res := sweep.NewPointResult(p, keys[i], simRes, elapsed)
		if _, err := w.Client.SubmitPoint(ctx, l.SweepID, workerID, res); err != nil {
			errMu.Lock()
			if submitErr == nil {
				submitErr = fmt.Errorf("dist: submit point %d: %w", p.Index, err)
			}
			errMu.Unlock()
			return
		}
		if w.OnPoint != nil {
			w.OnPoint(res)
		}
	})
	if err != nil {
		return err
	}
	errMu.Lock()
	defer errMu.Unlock()
	return submitErr
}

// runPoint simulates one grid point and delivers the result.
func (w *Worker) runPoint(ctx context.Context, eng *sim.Engine, workerID string, l *Lease, p sweep.Point) error {
	key, err := p.Key(l.WarmInstrs, l.MeasureInstrs, l.Seed)
	if err != nil {
		return err
	}
	rs, err := p.RunSpec()
	if err != nil {
		return err
	}
	start := time.Now()
	simRes, err := eng.RunContext(ctx, rs)
	if err != nil {
		return err
	}
	res := sweep.NewPointResult(p, key, simRes, time.Since(start))
	if _, err := w.Client.SubmitPoint(ctx, l.SweepID, workerID, res); err != nil {
		return fmt.Errorf("dist: submit point %d: %w", p.Index, err)
	}
	if w.OnPoint != nil {
		w.OnPoint(res)
	}
	return nil
}
