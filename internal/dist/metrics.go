package dist

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of the coordinator's counters and
// derived gauges, for JSON surfaces and tests.
type Snapshot struct {
	WorkersRegistered  uint64 `json:"workers_registered"`
	WorkersAlive       int    `json:"workers_alive"`
	WorkersQuarantined uint64 `json:"workers_quarantined"`
	LeasesOutstanding  int    `json:"leases_outstanding"`
	LeasesGranted      uint64 `json:"leases_granted"`
	LeasesCompleted    uint64 `json:"leases_completed"`
	LeasesExpired      uint64 `json:"leases_expired"`
	LeasesFailed       uint64 `json:"leases_failed"`
	PointsCompleted    uint64 `json:"points_completed"`
	PointsDuplicate    uint64 `json:"points_duplicate"`
	PointsRecovered    uint64 `json:"points_recovered"`
	PointsReinjected   uint64 `json:"points_reinjected"`
	SweepsSubmitted    uint64 `json:"sweeps_submitted"`
	SweepsCompleted    uint64 `json:"sweeps_completed"`
	SweepsFailed       uint64 `json:"sweeps_failed"`
}

// livenessWindow is how long after its last call a worker still counts
// as alive, in lease TTLs (a live worker heartbeats well inside one).
const livenessWindow = 3

// Snapshot returns a copy of the current counters and gauges.
func (c *Coordinator) Snapshot() Snapshot {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	s := Snapshot{
		WorkersRegistered:  c.metrics.workersRegistered,
		WorkersQuarantined: c.metrics.workersQuarantined,
		LeasesOutstanding:  len(c.leases),
		LeasesGranted:      c.metrics.leasesGranted,
		LeasesCompleted:    c.metrics.leasesCompleted,
		LeasesExpired:      c.metrics.leasesExpired,
		LeasesFailed:       c.metrics.leasesFailed,
		PointsCompleted:    c.metrics.pointsCompleted,
		PointsDuplicate:    c.metrics.pointsDuplicate,
		PointsRecovered:    c.metrics.pointsRecovered,
		PointsReinjected:   c.metrics.pointsReinjected,
		SweepsSubmitted:    c.metrics.sweepsSubmitted,
		SweepsCompleted:    c.metrics.sweepsCompleted,
		SweepsFailed:       c.metrics.sweepsFailed,
	}
	for _, w := range c.workers {
		if !w.quarantined && now.Sub(w.lastSeen) < livenessWindow*c.cfg.LeaseTTL {
			s.WorkersAlive++
		}
	}
	return s
}

// labelValue sanitises a worker name for use inside a Prometheus label.
func labelValue(s string) string {
	r := strings.NewReplacer(`\`, ``, `"`, ``, "\n", "")
	return r.Replace(s)
}

// WriteProm renders the coordinator's metrics in Prometheus text
// exposition format: scheduler counters, lease/worker gauges, and
// per-worker throughput (points/sec since registration) and liveness.
func (c *Coordinator) WriteProm(w io.Writer) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("iprefetchd_dist_workers_registered_total", "Workers ever registered with the coordinator.", c.metrics.workersRegistered)
	counter("iprefetchd_dist_workers_quarantined_total", "Workers quarantined after repeated lease failures.", c.metrics.workersQuarantined)
	counter("iprefetchd_dist_leases_granted_total", "Shard leases handed to workers.", c.metrics.leasesGranted)
	counter("iprefetchd_dist_leases_completed_total", "Leases whose shard finished cleanly.", c.metrics.leasesCompleted)
	counter("iprefetchd_dist_leases_expired_total", "Leases reaped after missing their heartbeat TTL.", c.metrics.leasesExpired)
	counter("iprefetchd_dist_leases_failed_total", "Leases abandoned by workers reporting an error.", c.metrics.leasesFailed)
	counter("iprefetchd_dist_points_completed_total", "Grid points accepted from workers (first delivery only).", c.metrics.pointsCompleted)
	counter("iprefetchd_dist_points_duplicate_total", "Idempotent re-deliveries of already-completed points.", c.metrics.pointsDuplicate)
	counter("iprefetchd_dist_points_recovered_total", "Grid points replayed from the journal at submission.", c.metrics.pointsRecovered)
	counter("iprefetchd_dist_points_reinjected_total", "Grid points requeued after a lease expired or failed.", c.metrics.pointsReinjected)
	counter("iprefetchd_dist_sweeps_submitted_total", "Distributed sweeps accepted.", c.metrics.sweepsSubmitted)
	counter("iprefetchd_dist_sweeps_completed_total", "Distributed sweeps finished successfully.", c.metrics.sweepsCompleted)
	counter("iprefetchd_dist_sweeps_failed_total", "Distributed sweeps failed (point retry budget exhausted).", c.metrics.sweepsFailed)
	gauge("iprefetchd_dist_leases_outstanding", "Leases currently held by workers.", int64(len(c.leases)))

	pending, running := 0, 0
	for _, ds := range c.sweeps {
		pending += len(ds.pending)
		if ds.sstate == SweepRunning {
			running++
		}
	}
	gauge("iprefetchd_dist_points_pending", "Grid points waiting to be leased.", int64(pending))
	gauge("iprefetchd_dist_sweeps_running", "Distributed sweeps currently executing.", int64(running))

	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "# HELP iprefetchd_dist_worker_points_total Points delivered per worker.\n# TYPE iprefetchd_dist_worker_points_total counter\n")
	for _, id := range ids {
		wk := c.workers[id]
		fmt.Fprintf(w, "iprefetchd_dist_worker_points_total{worker=\"%s/%s\"} %d\n", wk.id, labelValue(wk.name), wk.points)
	}
	fmt.Fprintf(w, "# HELP iprefetchd_dist_worker_points_per_sec Point throughput per worker since registration.\n# TYPE iprefetchd_dist_worker_points_per_sec gauge\n")
	for _, id := range ids {
		wk := c.workers[id]
		secs := now.Sub(wk.registeredAt).Seconds()
		rate := 0.0
		if secs > 0 {
			rate = float64(wk.points) / secs
		}
		fmt.Fprintf(w, "iprefetchd_dist_worker_points_per_sec{worker=\"%s/%s\"} %.4f\n", wk.id, labelValue(wk.name), rate)
	}
	fmt.Fprintf(w, "# HELP iprefetchd_dist_worker_alive 1 while the worker heartbeats within the liveness window (and is not quarantined).\n# TYPE iprefetchd_dist_worker_alive gauge\n")
	for _, id := range ids {
		wk := c.workers[id]
		alive := 0
		if !wk.quarantined && now.Sub(wk.lastSeen) < livenessWindow*c.cfg.LeaseTTL {
			alive = 1
		}
		fmt.Fprintf(w, "iprefetchd_dist_worker_alive{worker=\"%s/%s\"} %d\n", wk.id, labelValue(wk.name), alive)
	}
}
