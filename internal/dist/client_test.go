package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps backoff sleeps microscopic in tests.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func newFlakyServer(t *testing.T, failures int32, failStatus int, handler http.HandlerFunc) (*httptest.Server, *int32) {
	t.Helper()
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&calls, 1)
		if n <= failures {
			http.Error(w, `{"error":"synthetic"}`, failStatus)
			return
		}
		handler(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetriesServerErrors(t *testing.T) {
	srv, calls := newFlakyServer(t, 2, http.StatusInternalServerError, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/dist/workers" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Write([]byte(`{"id":"w-000007","lease_ttl_ms":1000}`))
	})
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	v, err := c.Register(context.Background(), "flaky")
	if err != nil {
		t.Fatalf("register through two 500s: %v", err)
	}
	if v.ID != "w-000007" || v.LeaseTTLMS != 1000 {
		t.Fatalf("register view = %+v", v)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two failures + success)", got)
	}
}

func TestClientExhaustsRetryBudget(t *testing.T) {
	srv, calls := newFlakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Register(context.Background(), "doomed"); err == nil {
		t.Fatal("register succeeded against a permanently failing server")
	}
	if got := atomic.LoadInt32(calls); got != int32(fastRetry.MaxAttempts) {
		t.Fatalf("server saw %d calls, want the full budget of %d", got, fastRetry.MaxAttempts)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	srv, calls := newFlakyServer(t, 1<<30, http.StatusBadRequest, nil)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Register(context.Background(), "rejected"); err == nil {
		t.Fatal("400 response did not surface an error")
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx is terminal)", got)
	}
}

func TestClientHonoursContextBetweenAttempts(t *testing.T) {
	srv, _ := newFlakyServer(t, 1<<30, http.StatusInternalServerError, nil)
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Register(ctx, "impatient")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored ctx for %s", elapsed)
	}
}

func TestClientMapsSentinelStatuses(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/leases", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"error":"quarantined"}`))
	})
	mux.HandleFunc("POST /v1/dist/leases/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		w.Write([]byte(`{"error":"lease gone"}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Acquire(context.Background(), "w-1"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("403 acquire: %v, want ErrQuarantined", err)
	}
	if err := c.Renew(context.Background(), "lease-1", "w-1"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("410 renew: %v, want ErrLeaseGone", err)
	}
}

func TestClientAcquireNoWork(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	l, err := c.Acquire(context.Background(), "w-1")
	if err != nil || l != nil {
		t.Fatalf("idle acquire = %v, %v; want nil, nil", l, err)
	}
}
