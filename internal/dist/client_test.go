package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps backoff sleeps microscopic in tests.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func newFlakyServer(t *testing.T, failures int32, failStatus int, handler http.HandlerFunc) (*httptest.Server, *int32) {
	t.Helper()
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&calls, 1)
		if n <= failures {
			http.Error(w, `{"error":"synthetic"}`, failStatus)
			return
		}
		handler(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetriesServerErrors(t *testing.T) {
	srv, calls := newFlakyServer(t, 2, http.StatusInternalServerError, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/dist/workers" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Write([]byte(`{"id":"w-000007","lease_ttl_ms":1000}`))
	})
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	v, err := c.Register(context.Background(), "flaky")
	if err != nil {
		t.Fatalf("register through two 500s: %v", err)
	}
	if v.ID != "w-000007" || v.LeaseTTLMS != 1000 {
		t.Fatalf("register view = %+v", v)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two failures + success)", got)
	}
}

func TestClientExhaustsRetryBudget(t *testing.T) {
	srv, calls := newFlakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Register(context.Background(), "doomed"); err == nil {
		t.Fatal("register succeeded against a permanently failing server")
	}
	if got := atomic.LoadInt32(calls); got != int32(fastRetry.MaxAttempts) {
		t.Fatalf("server saw %d calls, want the full budget of %d", got, fastRetry.MaxAttempts)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	srv, calls := newFlakyServer(t, 1<<30, http.StatusBadRequest, nil)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Register(context.Background(), "rejected"); err == nil {
		t.Fatal("400 response did not surface an error")
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx is terminal)", got)
	}
}

func TestClientHonoursContextBetweenAttempts(t *testing.T) {
	srv, _ := newFlakyServer(t, 1<<30, http.StatusInternalServerError, nil)
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Register(ctx, "impatient")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored ctx for %s", elapsed)
	}
}

func TestClientMapsSentinelStatuses(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/leases", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"error":"quarantined"}`))
	})
	mux.HandleFunc("POST /v1/dist/leases/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		w.Write([]byte(`{"error":"lease gone"}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Acquire(context.Background(), "w-1"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("403 acquire: %v, want ErrQuarantined", err)
	}
	if err := c.Renew(context.Background(), "lease-1", "w-1"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("410 renew: %v, want ErrLeaseGone", err)
	}
}

func TestClientAcquireNoWork(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	l, err := c.Acquire(context.Background(), "w-1")
	if err != nil || l != nil {
		t.Fatalf("idle acquire = %v, %v; want nil, nil", l, err)
	}
}

// fakeSleeper records requested sleep durations instead of sleeping.
type fakeSleeper struct {
	mu    sync.Mutex
	slept []time.Duration
	clock time.Time
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.slept = append(f.slept, d)
	f.clock = f.clock.Add(d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeSleeper) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock
}

func (f *fakeSleeper) durations() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// newThrottledClient wires a client to srv with a fake clock.
func newThrottledClient(srv *httptest.Server) (*Client, *fakeSleeper) {
	fs := &fakeSleeper{clock: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	c.now = fs.now
	c.sleep = fs.sleep
	return c, fs
}

func TestClientHonoursRetryAfterSeconds(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"w-1","lease_ttl_ms":1000}`))
	}))
	t.Cleanup(srv.Close)
	c, fs := newThrottledClient(srv)
	if _, err := c.Register(context.Background(), "w"); err != nil {
		t.Fatalf("register through one 429: %v", err)
	}
	slept := fs.durations()
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("want exactly one 7s sleep from Retry-After, got %v", slept)
	}
}

func TestClientHonoursRetryAfterHTTPDate(t *testing.T) {
	var calls int32
	var c *Client
	var fs *fakeSleeper
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			// 5s in the future relative to the fake clock.
			w.Header().Set("Retry-After", fs.now().Add(5*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"id":"w-1","lease_ttl_ms":1000}`))
	}))
	t.Cleanup(srv.Close)
	c, fs = newThrottledClient(srv)
	if _, err := c.Register(context.Background(), "w"); err != nil {
		t.Fatalf("register through one 503: %v", err)
	}
	slept := fs.durations()
	if len(slept) != 1 || slept[0] != 5*time.Second {
		t.Fatalf("want one 5s sleep from HTTP-date Retry-After, got %v", slept)
	}
}

func TestClientCapsRetryAfter(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "86400") // a day; do not believe it
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"w-1","lease_ttl_ms":1000}`))
	}))
	t.Cleanup(srv.Close)
	c, fs := newThrottledClient(srv)
	c.Retry.MaxRetryAfter = 10 * time.Second
	if _, err := c.Register(context.Background(), "w"); err != nil {
		t.Fatal(err)
	}
	if slept := fs.durations(); len(slept) != 1 || slept[0] != 10*time.Second {
		t.Fatalf("want Retry-After capped at 10s, got %v", slept)
	}
}

func TestClientBacksOffWithoutRetryAfter(t *testing.T) {
	// A 429 with no Retry-After falls back to jittered backoff bounded
	// by the policy — never a multi-second stall.
	srv, _ := newFlakyServer(t, 2, http.StatusTooManyRequests, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"w-1","lease_ttl_ms":1000}`))
	})
	c, fs := newThrottledClient(srv)
	if _, err := c.Register(context.Background(), "w"); err != nil {
		t.Fatal(err)
	}
	for _, d := range fs.durations() {
		if d > c.Retry.MaxDelay+c.Retry.MaxDelay/2 { // jitter factor < 1.5
			t.Fatalf("backoff sleep %v exceeds jittered MaxDelay", d)
		}
	}
}

func TestClientRotatesToFallbackReplica(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"w-2","lease_ttl_ms":1000}`))
	}))
	t.Cleanup(healthy.Close)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	c := NewClient(dead.URL, healthy.URL)
	c.Retry = fastRetry
	fs := &fakeSleeper{clock: time.Unix(9000, 0)}
	c.now, c.sleep = fs.now, fs.sleep
	v, err := c.Register(context.Background(), "w")
	if err != nil {
		t.Fatalf("register should fail over to the healthy replica: %v", err)
	}
	if v.ID != "w-2" {
		t.Fatalf("view = %+v", v)
	}
}
