// Package dist is the distributed sweep-execution subsystem: a
// Coordinator partitions a sweep.Spec grid into shards and hands them
// to remote workers as time-bounded leases over HTTP (see Handler),
// while a Worker (cmd/iprefetchworker) pulls leases, runs points on a
// local sim.Engine, streams completed points back, and renews its
// lease heartbeat. Every returned point persists through the same
// content-addressed sweep.Journal the local runner uses, so an expired
// lease (worker crash, network partition, missed heartbeat) is simply
// reinjected for other workers and a restarted coordinator resumes
// from the journal with zero lost and zero doubly-counted points.
// Point submission is idempotent (dedup by canonical point key), and
// workers that keep failing are quarantined so one bad host cannot
// starve a sweep.
package dist

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Errors returned by the coordinator; the HTTP layer maps each to a
// distinct status code.
var (
	// ErrUnknownWorker means the worker id was never registered (404).
	ErrUnknownWorker = errors.New("dist: unknown worker")
	// ErrQuarantined means the worker exceeded its failure budget and
	// may no longer acquire leases (403).
	ErrQuarantined = errors.New("dist: worker quarantined")
	// ErrLeaseGone means the lease expired or was never granted (410);
	// the worker should abandon the shard and acquire a fresh lease.
	ErrLeaseGone = errors.New("dist: lease gone")
	// ErrUnknownSweep means the sweep id is not registered here (404).
	ErrUnknownSweep = errors.New("dist: unknown sweep")
	// ErrUnknownPoint means a submitted result's key does not belong to
	// the sweep's grid (400).
	ErrUnknownPoint = errors.New("dist: result key not in sweep grid")
)

// Config sizes the coordinator. Zero values take the stated defaults.
type Config struct {
	// LeaseTTL is how long a lease lives between heartbeats; an
	// unrenewed lease past its TTL is reinjected. Default 30s.
	LeaseTTL time.Duration
	// ShardSize is the maximum number of grid points per lease.
	// Default 4.
	ShardSize int
	// MaxWorkerFailures quarantines a worker after this many
	// consecutive lease failures or expirations. Default 3.
	MaxWorkerFailures int
	// MaxPointFailures fails the whole sweep once any single point has
	// been handed out and lost this many times. Default 3.
	MaxPointFailures int
	// JournalDir roots the per-sweep checkpoint journals
	// (<JournalDir>/<sweep-id>); empty disables persistence (and with
	// it restart resume). The service layer points this at the same
	// directory local sweeps journal to, so a sweep started locally can
	// finish distributed and vice versa.
	JournalDir string
	// DefaultWarmInstrs / DefaultMeasureInstrs / DefaultSeed are the
	// engine budgets used when a spec leaves them zero. Defaults
	// 1.5M / 3M / 1.
	DefaultWarmInstrs    uint64
	DefaultMeasureInstrs uint64
	DefaultSeed          uint64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// NormalizeSpec, when non-nil, rewrites a submitted spec before
	// validation — the service layer uses it to expand
	// corpus:select(...) workload axes into pinned trace:<id> lists, so
	// grid points and the content-derived sweep ID never depend on the
	// executing machine's corpus contents.
	NormalizeSpec func(*sweep.Spec) error
	// OnEvent, when non-nil, receives progress notifications
	// ("shard-leased", "point-completed", "sweep-completed",
	// "sweep-failed") keyed by sweep id; the service layer fans them
	// out to SSE subscribers. Called with the coordinator lock held —
	// the hook must be fast and must not call back into the
	// coordinator.
	OnEvent func(sweepID, typ string, data any)
}

// SweepState is the lifecycle of a distributed sweep.
type SweepState string

// Distributed sweep lifecycle states.
const (
	SweepRunning   SweepState = "running"
	SweepCompleted SweepState = "completed"
	SweepFailed    SweepState = "failed"
)

// point execution states.
type pointState uint8

const (
	pointPending pointState = iota
	pointLeased
	pointDone
)

// distSweep is one distributed sweep; mutable fields are guarded by
// Coordinator.mu.
type distSweep struct {
	id      string
	spec    sweep.Spec
	warm    uint64
	measure uint64
	seed    uint64
	journal *sweep.Journal // nil without JournalDir

	points   []sweep.Point
	keys     []string // canonical key per point, grid order
	byKey    map[string]int
	state    []pointState
	failures []int // lost-lease count per point
	results  []sweep.PointResult
	pending  []int // point indices ready to lease, FIFO

	completed int
	recovered int
	sstate    SweepState
	errMsg    string
	artifacts map[string][]byte

	submittedAt time.Time
	finishedAt  time.Time
	done        chan struct{}
}

// worker is one registered worker; guarded by Coordinator.mu.
type worker struct {
	id           string
	name         string
	registeredAt time.Time
	lastSeen     time.Time
	points       uint64 // completed point submissions
	failures     int    // consecutive lease failures/expirations
	quarantined  bool
}

// lease is one outstanding shard grant; guarded by Coordinator.mu.
type lease struct {
	id       string
	workerID string
	sweepID  string
	points   []int // grid indices
	expires  time.Time
}

// Coordinator owns the shard queue and lease table for any number of
// distributed sweeps. All methods are safe for concurrent use. Lease
// expiry is evaluated lazily on every public entry point, so the
// coordinator needs no background goroutine: any polling worker (or a
// progress probe) drives reinjection.
type Coordinator struct {
	cfg Config

	mu         sync.Mutex
	sweeps     map[string]*distSweep
	order      []string // sweep ids in submission order (lease fairness)
	workers    map[string]*worker
	leases     map[string]*lease
	nextWorker uint64
	nextLease  uint64
	metrics    counters
}

// counters are the coordinator's monotonic metrics; gauges derive from
// live state at exposition time. Guarded by Coordinator.mu.
type counters struct {
	workersRegistered  uint64
	workersQuarantined uint64
	leasesGranted      uint64
	leasesCompleted    uint64
	leasesExpired      uint64
	leasesFailed       uint64
	pointsReinjected   uint64
	pointsCompleted    uint64
	pointsDuplicate    uint64
	pointsRecovered    uint64
	sweepsSubmitted    uint64
	sweepsCompleted    uint64
	sweepsFailed       uint64
}

// New returns a coordinator with cfg's defaults applied.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 4
	}
	if cfg.MaxWorkerFailures <= 0 {
		cfg.MaxWorkerFailures = 3
	}
	if cfg.MaxPointFailures <= 0 {
		cfg.MaxPointFailures = 3
	}
	if cfg.DefaultWarmInstrs == 0 {
		cfg.DefaultWarmInstrs = 1_500_000
	}
	if cfg.DefaultMeasureInstrs == 0 {
		cfg.DefaultMeasureInstrs = 3_000_000
	}
	if cfg.DefaultSeed == 0 {
		cfg.DefaultSeed = 1
	}
	return &Coordinator{
		cfg:     cfg,
		sweeps:  make(map[string]*distSweep),
		workers: make(map[string]*worker),
		leases:  make(map[string]*lease),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// event fires the progress hook, if any.
func (c *Coordinator) event(sweepID, typ string, data any) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(sweepID, typ, data)
	}
}

// SetOnEvent installs the progress hook after construction (the
// service layer builds its broker after the coordinator). Not safe to
// race with live traffic; call before serving.
func (c *Coordinator) SetOnEvent(fn func(sweepID, typ string, data any)) {
	c.cfg.OnEvent = fn
}

// LeaseTTL returns the configured lease lifetime (workers derive their
// heartbeat cadence from it).
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// WorkerView is the wire form of a registration.
type WorkerView struct {
	ID string `json:"id"`
	// LeaseTTLMS tells the worker how often to heartbeat (renew well
	// inside this interval).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// RegisterWorker admits a worker and returns its id and the lease TTL
// it must heartbeat within.
func (c *Coordinator) RegisterWorker(name string) WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	c.nextWorker++
	w := &worker{
		id:           fmt.Sprintf("w-%06d", c.nextWorker),
		name:         name,
		registeredAt: time.Now(),
		lastSeen:     time.Now(),
	}
	c.workers[w.id] = w
	c.metrics.workersRegistered++
	c.logf("dist: worker %s (%s) registered", w.id, w.name)
	return WorkerView{ID: w.id, LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds()}
}

// SweepView is the wire form of a distributed sweep's progress.
type SweepView struct {
	ID        string     `json:"id"`
	State     SweepState `json:"state"`
	Spec      sweep.Spec `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Total     int        `json:"total_points"`
	Completed int        `json:"completed_points"`
	Recovered int        `json:"recovered_points"`
	Pending   int        `json:"pending_points"`
	Leased    int        `json:"leased_points"`
	// Budgets echo the engine budgets every worker must run points
	// under.
	WarmInstrs    uint64     `json:"warm_instrs"`
	MeasureInstrs uint64     `json:"measure_instrs"`
	Seed          uint64     `json:"seed"`
	SubmittedAt   time.Time  `json:"submitted_at"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	Artifacts     []string   `json:"artifacts,omitempty"`
}

// Submit registers a sweep for distributed execution: the grid expands,
// journaled points are replayed immediately (zero recompute on
// coordinator restart), and the remainder queues for leasing. Identity
// is content-derived, so resubmitting an identical spec attaches to the
// existing sweep.
func (c *Coordinator) Submit(spec sweep.Spec) (SweepView, error) {
	if c.cfg.NormalizeSpec != nil {
		if err := c.cfg.NormalizeSpec(&spec); err != nil {
			return SweepView{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return SweepView{}, err
	}
	points, err := spec.Expand()
	if err != nil {
		return SweepView{}, err
	}
	warm, measure, seed := spec.WarmInstrs, spec.MeasureInstrs, spec.Seed
	if warm == 0 {
		warm = c.cfg.DefaultWarmInstrs
	}
	if measure == 0 {
		measure = c.cfg.DefaultMeasureInstrs
	}
	if seed == 0 {
		seed = c.cfg.DefaultSeed
	}
	id := spec.ID(warm, measure, seed)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	if ds, ok := c.sweeps[id]; ok {
		return c.viewLocked(ds), nil
	}

	ds := &distSweep{
		id: id, spec: spec,
		warm: warm, measure: measure, seed: seed,
		points:      points,
		keys:        make([]string, len(points)),
		byKey:       make(map[string]int, len(points)),
		state:       make([]pointState, len(points)),
		failures:    make([]int, len(points)),
		results:     make([]sweep.PointResult, len(points)),
		sstate:      SweepRunning,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	for i, p := range points {
		key, err := p.Key(warm, measure, seed)
		if err != nil {
			return SweepView{}, err // Validate vetted the axes; unreachable
		}
		ds.keys[i] = key
		ds.byKey[key] = i
	}
	if c.cfg.JournalDir != "" {
		j, err := sweep.OpenJournal(filepath.Join(c.cfg.JournalDir, id))
		if err != nil {
			c.logf("dist: sweep %s: journal disabled: %v", id, err)
		} else {
			ds.journal = j
			for i, key := range ds.keys {
				if res, ok := j.Get(key); ok {
					res.Point = points[i] // grid indices may differ across spec edits
					ds.results[i] = res
					ds.state[i] = pointDone
					ds.completed++
					ds.recovered++
					c.metrics.pointsRecovered++
				}
			}
		}
	}
	for i := range points {
		if ds.state[i] == pointPending {
			ds.pending = append(ds.pending, i)
		}
	}
	c.sweeps[id] = ds
	c.order = append(c.order, id)
	c.metrics.sweepsSubmitted++
	c.logf("dist: sweep %s submitted: %d points (%d recovered from journal, %d to lease)",
		id, len(points), ds.recovered, len(ds.pending))
	c.maybeFinishLocked(ds)
	return c.viewLocked(ds), nil
}

// Lease is one granted shard: the points to simulate, the budgets to
// run them under, and the TTL the worker must renew within.
type Lease struct {
	ID            string        `json:"id"`
	SweepID       string        `json:"sweep_id"`
	Points        []sweep.Point `json:"points"`
	WarmInstrs    uint64        `json:"warm_instrs"`
	MeasureInstrs uint64        `json:"measure_instrs"`
	Seed          uint64        `json:"seed"`
	TTLMS         int64         `json:"ttl_ms"`
}

// Acquire grants the next shard of pending points to the worker, or
// returns (nil, nil) when no sweep has pending work.
func (c *Coordinator) Acquire(workerID string) (*Lease, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	w, ok := c.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastSeen = now
	if w.quarantined {
		return nil, ErrQuarantined
	}
	for _, id := range c.order {
		ds := c.sweeps[id]
		if ds.sstate != SweepRunning || len(ds.pending) == 0 {
			continue
		}
		n := c.cfg.ShardSize
		if n > len(ds.pending) {
			n = len(ds.pending)
		}
		idxs := append([]int(nil), ds.pending[:n]...)
		ds.pending = ds.pending[n:]
		c.nextLease++
		l := &lease{
			id:       fmt.Sprintf("lease-%06d", c.nextLease),
			workerID: workerID,
			sweepID:  id,
			points:   idxs,
			expires:  now.Add(c.cfg.LeaseTTL),
		}
		pts := make([]sweep.Point, 0, n)
		for _, i := range idxs {
			ds.state[i] = pointLeased
			pts = append(pts, ds.points[i])
		}
		c.leases[l.id] = l
		c.metrics.leasesGranted++
		c.event(id, "shard-leased", map[string]any{
			"lease_id": l.id, "worker_id": workerID, "points": len(idxs),
			"completed": ds.completed, "total": len(ds.points),
		})
		return &Lease{
			ID: l.id, SweepID: id, Points: pts,
			WarmInstrs: ds.warm, MeasureInstrs: ds.measure, Seed: ds.seed,
			TTLMS: c.cfg.LeaseTTL.Milliseconds(),
		}, nil
	}
	return nil, nil
}

// Renew extends a live lease by one TTL (the worker heartbeat).
func (c *Coordinator) Renew(leaseID, workerID string) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
	}
	l, ok := c.leases[leaseID]
	if !ok || l.workerID != workerID {
		return ErrLeaseGone
	}
	l.expires = now.Add(c.cfg.LeaseTTL)
	return nil
}

// SubmitPoint records one completed grid point. Submission is
// idempotent and lease-independent: a result keyed into the grid is
// journaled and counted exactly once no matter how many workers (or
// retries) deliver it, and a worker whose lease already expired still
// contributes its finished work.
func (c *Coordinator) SubmitPoint(sweepID, workerID string, res sweep.PointResult) (duplicate bool, err error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	ds, ok := c.sweeps[sweepID]
	if !ok {
		return false, ErrUnknownSweep
	}
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
	}
	i, ok := ds.byKey[res.Key]
	if !ok {
		return false, ErrUnknownPoint
	}
	if ds.state[i] == pointDone {
		c.metrics.pointsDuplicate++
		return true, nil
	}
	res.Point = ds.points[i] // canonical grid point, not the worker's echo
	res.Recovered = false
	if ds.journal != nil {
		if err := ds.journal.Put(res); err != nil {
			// A lost checkpoint costs recomputation after a restart, not
			// correctness; log and keep the in-memory result.
			c.logf("dist: sweep %s: checkpoint point %d: %v", sweepID, i, err)
		}
	}
	// The point may sit in pending again if its lease expired between
	// the worker finishing it and the submission arriving; drop it.
	for pi, idx := range ds.pending {
		if idx == i {
			ds.pending = append(ds.pending[:pi], ds.pending[pi+1:]...)
			break
		}
	}
	ds.results[i] = res
	ds.state[i] = pointDone
	ds.completed++
	c.metrics.pointsCompleted++
	if w, ok := c.workers[workerID]; ok {
		w.points++
	}
	c.event(sweepID, "point-completed", map[string]any{
		"key": res.Key, "index": res.Point.Index, "worker_id": workerID,
		"ipc": res.IPC, "completed": ds.completed, "total": len(ds.points),
	})
	c.maybeFinishLocked(ds)
	return false, nil
}

// Complete closes a lease whose points were all submitted. Any point
// the worker failed to deliver is reinjected. A completed lease resets
// the worker's failure streak.
func (c *Coordinator) Complete(leaseID, workerID string) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leases[leaseID]
	if !ok || l.workerID != workerID {
		return ErrLeaseGone
	}
	delete(c.leases, leaseID)
	c.reinjectLocked(l)
	c.metrics.leasesCompleted++
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
		w.failures = 0
	}
	return nil
}

// Fail abandons a lease after a worker-side error: undelivered points
// reinject immediately (no need to wait for expiry) and the worker's
// failure streak grows, quarantining it past the budget. A point that
// keeps getting lost fails the whole sweep rather than looping forever.
func (c *Coordinator) Fail(leaseID, workerID, reason string) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leases[leaseID]
	if !ok || l.workerID != workerID {
		return ErrLeaseGone
	}
	delete(c.leases, leaseID)
	c.metrics.leasesFailed++
	c.logf("dist: lease %s failed by %s: %s", leaseID, workerID, reason)
	c.chargePointsLocked(l, reason)
	c.chargeWorkerLocked(workerID)
	return nil
}

// expireLocked reinjects every lease past its deadline. Caller must
// hold c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		c.metrics.leasesExpired++
		c.logf("dist: lease %s (worker %s) expired, reinjecting %d points", id, l.workerID, len(l.points))
		c.chargePointsLocked(l, "lease expired")
		c.chargeWorkerLocked(l.workerID)
	}
}

// reinjectLocked returns a lease's unfinished points to the pending
// queue. Caller must hold c.mu.
func (c *Coordinator) reinjectLocked(l *lease) int {
	ds, ok := c.sweeps[l.sweepID]
	if !ok {
		return 0
	}
	n := 0
	for _, i := range l.points {
		if ds.state[i] != pointLeased {
			continue
		}
		ds.state[i] = pointPending
		ds.pending = append(ds.pending, i)
		c.metrics.pointsReinjected++
		n++
	}
	return n
}

// chargePointsLocked reinjects a lost lease's points and fails the
// sweep once any point exhausts its retry budget. Caller must hold
// c.mu.
func (c *Coordinator) chargePointsLocked(l *lease, reason string) {
	ds, ok := c.sweeps[l.sweepID]
	if !ok {
		return
	}
	for _, i := range l.points {
		if ds.state[i] != pointLeased {
			continue
		}
		ds.failures[i]++
		if ds.failures[i] >= c.cfg.MaxPointFailures && ds.sstate == SweepRunning {
			c.failSweepLocked(ds, fmt.Sprintf("point %d lost %d times (last: %s)", i, ds.failures[i], reason))
		}
	}
	c.reinjectLocked(l)
}

// chargeWorkerLocked advances a worker's failure streak and quarantines
// it past the budget. Caller must hold c.mu.
func (c *Coordinator) chargeWorkerLocked(workerID string) {
	w, ok := c.workers[workerID]
	if !ok || w.quarantined {
		return
	}
	w.failures++
	if w.failures >= c.cfg.MaxWorkerFailures {
		w.quarantined = true
		c.metrics.workersQuarantined++
		c.logf("dist: worker %s (%s) quarantined after %d failures", w.id, w.name, w.failures)
	}
}

// failSweepLocked moves a sweep to the failed state and drops its
// queue. Caller must hold c.mu.
func (c *Coordinator) failSweepLocked(ds *distSweep, msg string) {
	ds.sstate = SweepFailed
	ds.errMsg = msg
	ds.pending = nil
	ds.finishedAt = time.Now()
	close(ds.done)
	c.metrics.sweepsFailed++
	c.event(ds.id, "sweep-failed", map[string]any{
		"error": msg, "completed": ds.completed, "total": len(ds.points),
	})
	c.logf("dist: sweep %s failed: %s", ds.id, msg)
}

// maybeFinishLocked completes the sweep once every point is done,
// rendering the same artifacts the local sweep path exports. Caller
// must hold c.mu.
func (c *Coordinator) maybeFinishLocked(ds *distSweep) {
	if ds.sstate != SweepRunning || ds.completed != len(ds.points) {
		return
	}
	out := &sweep.Outcome{
		Spec:      ds.spec,
		Points:    append([]sweep.PointResult(nil), ds.results...),
		Recovered: ds.recovered,
		Simulated: ds.completed - ds.recovered,
	}
	a := out.Artifact()
	ds.artifacts = make(map[string][]byte)
	if data, err := a.JSON(); err == nil {
		ds.artifacts["results.json"] = data
	}
	ds.artifacts["results.csv"] = a.CSV()
	if p := a.ParetoCSV(); p != nil {
		ds.artifacts["pareto.csv"] = p
	}
	ds.sstate = SweepCompleted
	ds.finishedAt = time.Now()
	close(ds.done)
	c.metrics.sweepsCompleted++
	names := make([]string, 0, len(ds.artifacts))
	for name := range ds.artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	c.event(ds.id, "artifact-ready", map[string]any{"artifacts": names})
	c.event(ds.id, "sweep-completed", map[string]any{
		"completed": ds.completed, "total": len(ds.points), "recovered": ds.recovered,
	})
	c.logf("dist: sweep %s completed (%d points, %d recovered)", ds.id, ds.completed, ds.recovered)
}

// viewLocked snapshots a sweep. Caller must hold c.mu.
func (c *Coordinator) viewLocked(ds *distSweep) SweepView {
	leased := 0
	for _, st := range ds.state {
		if st == pointLeased {
			leased++
		}
	}
	v := SweepView{
		ID:            ds.id,
		State:         ds.sstate,
		Spec:          ds.spec,
		Error:         ds.errMsg,
		Total:         len(ds.points),
		Completed:     ds.completed,
		Recovered:     ds.recovered,
		Pending:       len(ds.pending),
		Leased:        leased,
		WarmInstrs:    ds.warm,
		MeasureInstrs: ds.measure,
		Seed:          ds.seed,
		SubmittedAt:   ds.submittedAt,
	}
	if !ds.finishedAt.IsZero() {
		t := ds.finishedAt
		v.FinishedAt = &t
	}
	for name := range ds.artifacts {
		v.Artifacts = append(v.Artifacts, name)
	}
	sort.Strings(v.Artifacts)
	return v
}

// Sweep returns the sweep with the given id.
func (c *Coordinator) Sweep(id string) (SweepView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	ds, ok := c.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	return c.viewLocked(ds), true
}

// Sweeps lists every known sweep in submission order.
func (c *Coordinator) Sweeps() []SweepView {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	out := make([]SweepView, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.viewLocked(c.sweeps[id]))
	}
	return out
}

// Wait blocks until the sweep reaches a terminal state or ctx fires.
func (c *Coordinator) Wait(ctx context.Context, id string) (SweepView, error) {
	c.mu.Lock()
	ds, ok := c.sweeps[id]
	c.mu.Unlock()
	if !ok {
		return SweepView{}, ErrUnknownSweep
	}
	select {
	case <-ds.done:
	case <-ctx.Done():
		return SweepView{}, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewLocked(ds), nil
}

// artifactContentTypes maps artifact names to media types (mirrors the
// local sweep path).
var artifactContentTypes = map[string]string{
	"results.json": "application/json",
	"results.csv":  "text/csv; charset=utf-8",
	"pareto.csv":   "text/csv; charset=utf-8",
}

// Artifact returns one rendered artifact of a completed sweep.
func (c *Coordinator) Artifact(id, name string) (data []byte, contentType string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, found := c.sweeps[id]
	if !found || ds.artifacts == nil {
		return nil, "", false
	}
	data, ok = ds.artifacts[name]
	if !ok {
		return nil, "", false
	}
	ct := artifactContentTypes[name]
	if ct == "" {
		ct = "application/octet-stream"
	}
	return data, ct, true
}
