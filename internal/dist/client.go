package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sweep"
)

// RetryPolicy shapes the client's jittered exponential backoff. Every
// transport error and 5xx response retries until the attempt budget is
// spent; 429 and 503 also retry, sleeping out a server-provided
// Retry-After when one is present (the server knows its own load
// better than our backoff curve does); other 4xx responses are
// terminal (the coordinator said no, asking again the same way will
// not help).
type RetryPolicy struct {
	// MaxAttempts bounds total tries per call (first try included).
	// Default 8.
	MaxAttempts int
	// BaseDelay is the first backoff step. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 5s.
	MaxDelay time.Duration
	// MaxRetryAfter caps how long a server-provided Retry-After is
	// honoured, so a misconfigured server cannot park the client.
	// Default 30s.
	MaxRetryAfter time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = 30 * time.Second
	}
	return p
}

// Client talks to a coordinator mounted at <BaseURL>/v1/dist (the
// iprefetchd daemon root). All methods retry transient failures under
// the retry policy and honour ctx cancellation between attempts. With
// FallbackURLs set (a replicated control plane), the client rotates to
// the next replica after a transport error or server-side failure —
// follower replicas 307-redirect writes to the owner, which the
// underlying http.Client follows transparently.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://host:8080"; the /v1/dist
	// prefix is appended here.
	BaseURL string
	// FallbackURLs lists additional replica roots to rotate through
	// when the current one is unreachable.
	FallbackURLs []string
	// HTTPClient defaults to a client with a 30s request timeout.
	HTTPClient *http.Client
	// Retry shapes the backoff; zero fields take defaults.
	Retry RetryPolicy

	mu     sync.Mutex
	rng    *rand.Rand
	urlIdx int // index into the BaseURL+FallbackURLs rotation

	// test seams; nil means the real clock.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a client for the daemon at baseURL. Additional
// URLs are failover replicas.
func NewClient(baseURL string, fallback ...string) *Client {
	for i, u := range fallback {
		fallback[i] = strings.TrimRight(u, "/")
	}
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), FallbackURLs: fallback}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) timeNow() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

func (c *Client) doSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// currentURL returns the replica root this client is pinned to.
func (c *Client) currentURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.urlIdx == 0 || len(c.FallbackURLs) == 0 {
		return c.BaseURL
	}
	return c.FallbackURLs[(c.urlIdx-1)%len(c.FallbackURLs)]
}

// rotateURL advances to the next replica after a failure.
func (c *Client) rotateURL() {
	c.mu.Lock()
	if len(c.FallbackURLs) > 0 {
		c.urlIdx = (c.urlIdx + 1) % (len(c.FallbackURLs) + 1)
	}
	c.mu.Unlock()
}

// jitter scales d by a uniform factor in [0.5, 1.5).
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// apiError is a non-retryable coordinator response.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("dist: coordinator returned %d: %s", e.status, e.msg)
}

// parseRetryAfter interprets a Retry-After header value: either
// delta-seconds or an HTTP date.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// do POSTs (or GETs, when body is nil and method says so) one API call
// with retries, decoding a JSON response into out when non-nil.
// Returns the final HTTP status.
func (c *Client) do(ctx context.Context, method, path string, body, out any) (int, error) {
	policy := c.Retry.withDefaults()
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	delay := policy.BaseDelay
	var retryAfter time.Duration // server-provided wait, consumed once
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.jitter(delay)
			if retryAfter > 0 {
				// The server told us when to come back; believe it
				// (capped) instead of guessing.
				wait = retryAfter
				if wait > policy.MaxRetryAfter {
					wait = policy.MaxRetryAfter
				}
				retryAfter = 0
			}
			if err := c.doSleep(ctx, wait); err != nil {
				return 0, err
			}
			if delay *= 2; delay > policy.MaxDelay {
				delay = policy.MaxDelay
			}
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		url := c.currentURL() + "/v1/dist" + path
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return 0, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			lastErr = err
			c.rotateURL()
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			// Back-pressure: retry when the server says to.
			lastErr = &apiError{resp.StatusCode, errBody(data)}
			if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After"), c.timeNow()); ok {
				retryAfter = ra
			}
			continue
		case resp.StatusCode >= 500:
			lastErr = &apiError{resp.StatusCode, errBody(data)}
			c.rotateURL() // this replica is in trouble; try a peer
			continue
		case resp.StatusCode >= 400:
			return resp.StatusCode, &apiError{resp.StatusCode, errBody(data)}
		}
		if out != nil && resp.StatusCode != http.StatusNoContent {
			if err := json.Unmarshal(data, out); err != nil {
				return resp.StatusCode, fmt.Errorf("dist: decode %s response: %w", path, err)
			}
		}
		return resp.StatusCode, nil
	}
	return 0, fmt.Errorf("dist: %s %s: retry budget exhausted: %w", method, path, lastErr)
}

// errBody extracts the {"error": ...} message from an error response.
func errBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// Register admits this worker to the coordinator.
func (c *Client) Register(ctx context.Context, name string) (WorkerView, error) {
	var v WorkerView
	_, err := c.do(ctx, http.MethodPost, "/workers", struct {
		Name string `json:"name"`
	}{name}, &v)
	return v, err
}

// SubmitSweep registers a spec for distributed execution.
func (c *Client) SubmitSweep(ctx context.Context, spec sweep.Spec) (SweepView, error) {
	var v SweepView
	_, err := c.do(ctx, http.MethodPost, "/sweeps", spec, &v)
	return v, err
}

// Sweep fetches one sweep's progress.
func (c *Client) Sweep(ctx context.Context, id string) (SweepView, error) {
	var v SweepView
	_, err := c.do(ctx, http.MethodGet, "/sweeps/"+id, nil, &v)
	return v, err
}

// Artifact downloads one artifact of a completed sweep. Artifacts are
// not all JSON (results.csv, pareto.csv), so the body comes back raw.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.currentURL()+"/v1/dist/sweeps/"+id+"/artifacts/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{resp.StatusCode, errBody(body)}
	}
	return body, nil
}

// FetchCorpus streams one trace-corpus container from the coordinator
// by content hash (GET /v1/corpus/{id} at the daemon root, outside the
// /v1/dist prefix). The caller owns the returned body and should
// re-hash what it reads — the id names the bytes.
func (c *Client) FetchCorpus(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.currentURL()+"/v1/corpus/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, &apiError{resp.StatusCode, errBody(body)}
	}
	return resp.Body, nil
}

// Acquire requests the next shard lease. A nil lease with nil error
// means the coordinator has no pending work right now.
func (c *Client) Acquire(ctx context.Context, workerID string) (*Lease, error) {
	var l Lease
	status, err := c.do(ctx, http.MethodPost, "/leases", struct {
		WorkerID string `json:"worker_id"`
	}{workerID}, &l)
	if err != nil {
		if isAPIStatus(err, http.StatusForbidden) {
			return nil, ErrQuarantined
		}
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &l, nil
}

// isAPIStatus reports whether err is a coordinator response with the
// given status.
func isAPIStatus(err error, status int) bool {
	ae, ok := err.(*apiError)
	return ok && ae.status == status
}

// leaseOp posts one lease lifecycle call, translating 410 to
// ErrLeaseGone.
func (c *Client) leaseOp(ctx context.Context, leaseID, op, workerID, msg string) error {
	_, err := c.do(ctx, http.MethodPost, "/leases/"+leaseID+"/"+op, struct {
		WorkerID string `json:"worker_id"`
		Error    string `json:"error,omitempty"`
	}{workerID, msg}, nil)
	if isAPIStatus(err, http.StatusGone) {
		return ErrLeaseGone
	}
	return err
}

// Renew heartbeats a lease.
func (c *Client) Renew(ctx context.Context, leaseID, workerID string) error {
	return c.leaseOp(ctx, leaseID, "renew", workerID, "")
}

// Complete closes a fully-delivered lease.
func (c *Client) Complete(ctx context.Context, leaseID, workerID string) error {
	return c.leaseOp(ctx, leaseID, "complete", workerID, "")
}

// Fail abandons a lease after a worker-side error.
func (c *Client) Fail(ctx context.Context, leaseID, workerID, msg string) error {
	return c.leaseOp(ctx, leaseID, "fail", workerID, msg)
}

// SubmitPoint delivers one completed point (idempotent on the
// coordinator side; duplicate deliveries are acknowledged, not
// re-counted).
func (c *Client) SubmitPoint(ctx context.Context, sweepID, workerID string, res sweep.PointResult) (duplicate bool, err error) {
	var v struct {
		Duplicate bool `json:"duplicate"`
	}
	_, err = c.do(ctx, http.MethodPost, "/sweeps/"+sweepID+"/points", struct {
		WorkerID string            `json:"worker_id"`
		Result   sweep.PointResult `json:"result"`
	}{workerID, res}, &v)
	return v.Duplicate, err
}
