package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
)

func blockAt(pc isa.Addr, n int, cti isa.CTIKind, target isa.Addr) isa.Block {
	return isa.Block{PC: pc, NumInstrs: n, CTI: cti, Target: target}
}

func TestProfileCountsBasics(t *testing.T) {
	p := NewProfile(64)
	p.Observe(&isa.Block{PC: 0, NumInstrs: 16, CTI: isa.CTINone})
	p.Observe(&isa.Block{PC: 64, NumInstrs: 16, CTI: isa.CTICall, Target: 0x4000})
	if p.Instructions != 32 || p.Blocks != 2 {
		t.Fatalf("counts = %d/%d", p.Instructions, p.Blocks)
	}
	if p.CTICounts[isa.CTICall] != 1 || p.CTICounts[isa.CTINone] != 1 {
		t.Fatalf("CTI counts wrong")
	}
	if p.CTIFraction(isa.CTICall) != 0.5 {
		t.Fatalf("fraction = %v", p.CTIFraction(isa.CTICall))
	}
	// Two lines touched: 0 and 1.
	if p.FootprintBytes() != 128 {
		t.Fatalf("footprint = %d", p.FootprintBytes())
	}
}

func TestProfileDiscontinuities(t *testing.T) {
	p := NewProfile(64)
	// Call from line 0 to line 256 (0x4000/64).
	p.Observe(&isa.Block{PC: 0, NumInstrs: 4, CTI: isa.CTICall, Target: 0x4000})
	if p.DistinctTriggers() != 1 {
		t.Fatalf("triggers = %d", p.DistinctTriggers())
	}
	if p.SingleTargetFraction() != 1 {
		t.Fatalf("single-target = %v", p.SingleTargetFraction())
	}
	// Same trigger, second target: no longer single-target.
	p.Observe(&isa.Block{PC: 0, NumInstrs: 4, CTI: isa.CTICall, Target: 0x8000})
	if p.SingleTargetFraction() != 0 {
		t.Fatalf("single-target after 2nd target = %v", p.SingleTargetFraction())
	}
	// Same-line transitions are ignored.
	before := p.DistinctTriggers()
	p.Observe(&isa.Block{PC: 0, NumInstrs: 2, CTI: isa.CTICondTakenFwd, Target: 32})
	if p.DistinctTriggers() != before {
		t.Fatal("same-line transition counted as discontinuity")
	}
}

func TestStackDistances(t *testing.T) {
	p := NewProfile(64)
	// Touch lines 0,1,2 then 0 again: 0's reuse distance is 2.
	for _, pc := range []isa.Addr{0, 64, 128, 0} {
		p.Observe(&isa.Block{PC: pc, NumInstrs: 4, CTI: isa.CTIUncondBranch, Target: 0})
	}
	if p.ColdRefs != 3 {
		t.Fatalf("cold refs = %d", p.ColdRefs)
	}
	// Distance 2 lands in bucket 1 ([2,4)).
	if p.ReuseBuckets[1] != 1 {
		t.Fatalf("reuse buckets = %v", p.ReuseBuckets[:4])
	}
}

func TestBackToBackReuse(t *testing.T) {
	p := NewProfile(64)
	p.Observe(&isa.Block{PC: 0, NumInstrs: 4, CTI: isa.CTIUncondBranch, Target: 0})
	p.Observe(&isa.Block{PC: 0, NumInstrs: 4, CTI: isa.CTIUncondBranch, Target: 0})
	// Consecutive same-line references are elided (still fetching the
	// same line), so no warm refs are recorded at all.
	var total uint64
	for _, c := range p.ReuseBuckets {
		total += c
	}
	if total != 0 {
		t.Fatalf("same-line run recorded %d warm refs", total)
	}
}

// lruStack distances must match a naive reference implementation.
func TestLRUStackMatchesReference(t *testing.T) {
	f := func(refs []uint8) bool {
		s := newLRUStack()
		var order []isa.Line // MRU at end
		for _, r := range refs {
			l := isa.Line(r % 32)
			got := s.touch(l)
			// Reference: find l in order, distance = entries after it.
			want := uint64(0)
			found := -1
			for i := len(order) - 1; i >= 0; i-- {
				if order[i] == l {
					found = i
					break
				}
			}
			if found >= 0 {
				want = uint64(len(order) - 1 - found)
				order = append(order[:found], order[found+1:]...)
			}
			order = append(order, l)
			if found >= 0 && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUStackRebuild(t *testing.T) {
	s := newLRUStack()
	// Force many position assignments over a small line set so the
	// Fenwick tree rebuilds at least once (tree starts at 1<<16).
	for i := 0; i < 1<<17; i++ {
		s.touch(isa.Line(i % 64))
	}
	// After heavy churn, distances are still exact: touching the same
	// line twice in a row gives 0; a line 63 touches ago gives 63.
	s.touch(isa.Line(7))
	if d := s.touch(isa.Line(7)); d != 0 {
		t.Fatalf("back-to-back distance = %d", d)
	}
	for i := 0; i < 64; i++ {
		s.touch(isa.Line(i))
	}
	if d := s.touch(isa.Line(0)); d != 63 {
		t.Fatalf("distance = %d, want 63", d)
	}
}

func TestWorkingSetMonotone(t *testing.T) {
	prog := workload.MustBuildProgram(workload.Web(), 0)
	g := workload.NewGenerator(prog, 3)
	p := NewProfile(64)
	var b isa.Block
	for i := 0; i < 200_000; i++ {
		g.Next(&b)
		p.Observe(&b)
	}
	w50 := p.WorkingSetLines(0.5)
	w90 := p.WorkingSetLines(0.9)
	w99 := p.WorkingSetLines(0.99)
	if !(w50 <= w90 && w90 <= w99) {
		t.Fatalf("working sets not monotone: %d %d %d", w50, w90, w99)
	}
	// The 90% instruction working set of a commercial workload must
	// exceed the 32 KB L1-I (512 lines) — that is the paper's premise.
	if w90 < 512 {
		t.Fatalf("90%% working set = %d lines; L1-I would hold it", w90)
	}
}

func TestSingleTargetPremiseOnWorkloads(t *testing.T) {
	// The paper's table-design premise: most trigger lines have one
	// target. Verify it holds for every built-in application.
	for _, prof := range workload.Profiles() {
		prog := workload.MustBuildProgram(prof, 0)
		g := workload.NewGenerator(prog, 1)
		p := NewProfile(64)
		var b isa.Block
		for i := 0; i < 300_000; i++ {
			g.Next(&b)
			p.Observe(&b)
		}
		if f := p.SingleTargetFraction(); f < 0.5 {
			t.Errorf("%s: single-target fraction = %.2f; paper premise broken", prof.Name, f)
		}
	}
}

func TestReportRenders(t *testing.T) {
	prog := workload.MustBuildProgram(workload.DB(), 0)
	g := workload.NewGenerator(prog, 1)
	p := NewProfile(64)
	var b isa.Block
	for i := 0; i < 50_000; i++ {
		g.Next(&b)
		p.Observe(&b)
	}
	var sb strings.Builder
	p.Report(&sb)
	out := sb.String()
	for _, want := range []string{"instructions", "footprint", "working set", "CTI mix", "reuse distance", "discontinuity distance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyProfile(t *testing.T) {
	p := NewProfile(64)
	if p.CTIFraction(isa.CTICall) != 0 || p.SingleTargetFraction() != 0 || p.WorkingSetLines(0.9) != 0 {
		t.Fatal("empty profile must report zeros")
	}
	var sb strings.Builder
	p.Report(&sb) // must not panic
	_ = blockAt
}

func BenchmarkObserve(b *testing.B) {
	prog := workload.MustBuildProgram(workload.DB(), 0)
	g := workload.NewGenerator(prog, 1)
	p := NewProfile(64)
	var blk isa.Block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&blk)
		p.Observe(&blk)
	}
}
