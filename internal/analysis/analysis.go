// Package analysis characterises basic-block streams the way the
// paper's Section 3 characterises its traces: instruction-footprint and
// reuse behaviour, the control-transfer mix, and the discontinuity
// structure the prefetchers depend on. cmd/tracegen exposes it as the
// `analyze` subcommand, and the workload calibration tests use it to
// keep the synthetic applications honest.
package analysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/tlb"
)

// Profile accumulates statistics over a block stream.
type Profile struct {
	lineBytes int

	Instructions uint64
	Blocks       uint64

	// CTICounts tallies block terminators.
	CTICounts [isa.NumCTIKinds]uint64

	// UniqueLines is the instruction footprint in distinct cache lines.
	uniqueLines map[isa.Line]struct{}

	// stack is an exact LRU stack over instruction lines for reuse
	// (stack) distances; distances land in power-of-two buckets.
	stack *lruStack
	// ReuseBuckets[i] counts line references with stack distance in
	// [2^i, 2^(i+1)); ColdRefs counts first-ever references.
	ReuseBuckets [28]uint64
	ColdRefs     uint64

	// Discontinuities: cross-line transitions caused by flow-changing
	// CTIs, bucketed by |target - trigger| line distance.
	DiscBuckets [28]uint64
	// DiscTargets maps trigger line -> distinct target lines seen, for
	// the paper's "one target per trigger line" premise (Section 4).
	discTargets map[isa.Line]map[isa.Line]struct{}

	// itlb models the machine's first-level instruction TLB (same
	// geometry as the simulator's default hierarchy) over the block
	// stream, one lookup per block, so traces can be fingerprinted by
	// translation pressure as well as cache pressure.
	itlb *tlb.TLB

	prevLine isa.Line
	prevCTI  isa.CTIKind
	started  bool
}

// NewProfile creates an analyser for the given line size.
func NewProfile(lineBytes int) *Profile {
	return &Profile{
		lineBytes:   lineBytes,
		uniqueLines: make(map[isa.Line]struct{}),
		stack:       newLRUStack(),
		discTargets: make(map[isa.Line]map[isa.Line]struct{}),
		itlb:        tlb.New(tlb.DefaultHierarchyConfig().ITLB),
	}
}

// Observe feeds one block.
func (p *Profile) Observe(b *isa.Block) {
	p.Blocks++
	p.Instructions += uint64(b.NumInstrs)
	p.CTICounts[b.CTI]++
	p.itlb.Access(tlb.PageOf(b.PC))

	first, last := b.Lines(p.lineBytes)
	for l := first; l <= last; l++ {
		if !p.started || l != p.prevLine {
			p.touchLine(l)
		}
		p.prevLine = l
		p.started = true
	}

	// Discontinuity structure.
	if b.CTI.ChangesFlow() {
		trigger := isa.LineOf(b.End()-1, p.lineBytes)
		target := isa.LineOf(b.Target, p.lineBytes)
		if trigger != target {
			var dist uint64
			if target > trigger {
				dist = uint64(target - trigger)
			} else {
				dist = uint64(trigger - target)
			}
			p.DiscBuckets[bucketOf(dist)]++
			m, ok := p.discTargets[trigger]
			if !ok {
				m = make(map[isa.Line]struct{}, 1)
				p.discTargets[trigger] = m
			}
			m[target] = struct{}{}
		}
	}
	p.prevCTI = b.CTI
}

func (p *Profile) touchLine(l isa.Line) {
	if _, seen := p.uniqueLines[l]; !seen {
		p.uniqueLines[l] = struct{}{}
		p.ColdRefs++
		p.stack.touch(l)
		return
	}
	d := p.stack.touch(l)
	p.ReuseBuckets[bucketOf(d)]++
}

func bucketOf(v uint64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	if b >= 28 {
		b = 27
	}
	return b
}

// FootprintBytes returns the instruction footprint in bytes.
func (p *Profile) FootprintBytes() uint64 {
	return uint64(len(p.uniqueLines)) * uint64(p.lineBytes)
}

// ITLBMissesPerKI returns modelled first-level I-TLB misses per
// kilo-instruction (one lookup per basic block against the default
// 128-entry 2-way I-TLB).
func (p *Profile) ITLBMissesPerKI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return 1000 * float64(p.itlb.Misses()) / float64(p.Instructions)
}

// CTIFraction returns the share of blocks ending in kind k.
func (p *Profile) CTIFraction(k isa.CTIKind) float64 {
	if p.Blocks == 0 {
		return 0
	}
	return float64(p.CTICounts[k]) / float64(p.Blocks)
}

// WorkingSetLines returns the number of distinct lines covering frac of
// all warm (non-cold) line references — e.g. WorkingSetLines(0.9) is the
// 90 % working set. It is derived from the stack-distance histogram: a
// fully-associative LRU cache of that many lines would hit frac of warm
// references.
func (p *Profile) WorkingSetLines(frac float64) uint64 {
	var total uint64
	for _, c := range p.ReuseBuckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(frac * float64(total))
	var cum uint64
	for i, c := range p.ReuseBuckets {
		cum += c
		if cum >= want {
			return uint64(1) << uint(i+1)
		}
	}
	return uint64(1) << 28
}

// SingleTargetFraction returns the share of discontinuity trigger lines
// with exactly one distinct target (the paper's table-design premise).
func (p *Profile) SingleTargetFraction() float64 {
	if len(p.discTargets) == 0 {
		return 0
	}
	single := 0
	for _, m := range p.discTargets {
		if len(m) == 1 {
			single++
		}
	}
	return float64(single) / float64(len(p.discTargets))
}

// DistinctTriggers returns the number of distinct discontinuity trigger
// lines observed — the discontinuity table's working set.
func (p *Profile) DistinctTriggers() int { return len(p.discTargets) }

// Report writes a human-readable summary.
func (p *Profile) Report(w io.Writer) {
	fmt.Fprintf(w, "instructions        %d\n", p.Instructions)
	fmt.Fprintf(w, "blocks              %d (%.1f instr/block)\n", p.Blocks,
		float64(p.Instructions)/float64(max(p.Blocks, 1)))
	fmt.Fprintf(w, "footprint           %.2f MB (%d lines)\n",
		float64(p.FootprintBytes())/(1<<20), len(p.uniqueLines))
	fmt.Fprintf(w, "90%% working set     %.1f KB\n",
		float64(p.WorkingSetLines(0.9)*uint64(p.lineBytes))/(1<<10))
	fmt.Fprintf(w, "99%% working set     %.1f KB\n",
		float64(p.WorkingSetLines(0.99)*uint64(p.lineBytes))/(1<<10))
	fmt.Fprintf(w, "disc. triggers      %d lines (%.1f%% single-target)\n",
		p.DistinctTriggers(), 100*p.SingleTargetFraction())
	fmt.Fprintf(w, "I-TLB misses        %.3f /k-instr (128e/2w model)\n",
		p.ITLBMissesPerKI())

	fmt.Fprintf(w, "CTI mix:\n")
	type kv struct {
		k isa.CTIKind
		n uint64
	}
	var kinds []kv
	for k := 0; k < isa.NumCTIKinds; k++ {
		kinds = append(kinds, kv{isa.CTIKind(k), p.CTICounts[k]})
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].n > kinds[j].n })
	for _, e := range kinds {
		if e.n == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-16s %5.2f%%\n", e.k, 100*float64(e.n)/float64(max(p.Blocks, 1)))
	}

	fmt.Fprintf(w, "line reuse distance (warm refs):\n")
	var total uint64
	for _, c := range p.ReuseBuckets {
		total += c
	}
	for i, c := range p.ReuseBuckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, "  <%7d lines    %5.2f%%\n", uint64(1)<<uint(i+1),
			100*float64(c)/float64(max(total, 1)))
	}
	fmt.Fprintf(w, "discontinuity distance:\n")
	total = 0
	for _, c := range p.DiscBuckets {
		total += c
	}
	for i, c := range p.DiscBuckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, "  <%7d lines    %5.2f%%\n", uint64(1)<<uint(i+1),
			100*float64(c)/float64(max(total, 1)))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// lruStack computes exact LRU stack distances (Mattson) in O(log n) per
// reference: each reference occupies a monotonically increasing time
// position, a Fenwick tree counts live positions, and a reference's
// stack distance is the number of live positions after its previous
// occurrence. The structure is rebuilt when mostly dead to bound memory.
type lruStack struct {
	pos  map[isa.Line]int // line -> its current (live) position
	tree []uint32         // Fenwick tree over positions, 1-based
	next int              // next position to assign
	live int
}

func newLRUStack() *lruStack {
	return &lruStack{pos: make(map[isa.Line]int), tree: make([]uint32, 1<<16)}
}

// touch records a reference to l, returning its stack distance (number
// of distinct lines referenced since l's last reference; 0 for
// back-to-back references). A first-ever reference returns 0; callers
// handle cold references separately.
func (s *lruStack) touch(l isa.Line) uint64 {
	var dist uint64
	if idx, ok := s.pos[l]; ok {
		// Live entries strictly after idx = live total - live up to idx.
		dist = uint64(s.live) - uint64(s.prefix(idx))
		s.add(idx, -1)
		s.live--
		// Remove the stale mapping so a rebuild cannot resurrect it.
		delete(s.pos, l)
	}
	s.next++
	if s.next >= len(s.tree) {
		s.rebuild()
	}
	s.add(s.next, 1)
	s.pos[l] = s.next
	s.live++
	return dist
}

// prefix returns the number of live positions in [1, i].
func (s *lruStack) prefix(i int) uint32 {
	var sum uint32
	for ; i > 0; i -= i & (-i) {
		sum += s.tree[i]
	}
	return sum
}

func (s *lruStack) add(i int, delta int32) {
	for ; i < len(s.tree); i += i & (-i) {
		s.tree[i] = uint32(int32(s.tree[i]) + delta)
	}
}

// rebuild renumbers live positions densely, preserving order.
func (s *lruStack) rebuild() {
	type le struct {
		line isa.Line
		pos  int
	}
	lines := make([]le, 0, len(s.pos))
	for l, p := range s.pos {
		lines = append(lines, le{l, p})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].pos < lines[j].pos })
	size := 1 << 16
	for size < 2*len(lines)+1024 {
		size <<= 1
	}
	s.tree = make([]uint32, size)
	s.next = 0
	for _, e := range lines {
		s.next++
		s.pos[e.line] = s.next
		s.add(s.next, 1)
	}
}
