package repro_test

import (
	"fmt"

	"repro"
)

// Build the paper's 4-way CMP running the database workload with the
// discontinuity prefetcher and the L2-bypass install policy, and verify
// prefetching eliminates most instruction misses.
func Example() {
	baseline, _ := repro.NewMachine(repro.MachineConfig{
		Cores:     4,
		Workloads: []string{"DB"},
	})
	baseline.Run(500_000)
	baseline.ResetStats()
	baseline.Run(500_000)

	prefetched, _ := repro.NewMachine(repro.MachineConfig{
		Cores:      4,
		Workloads:  []string{"DB"},
		Prefetcher: repro.PrefetcherDiscontinuity,
		BypassL2:   true,
	})
	prefetched.Run(500_000)
	prefetched.ResetStats()
	prefetched.Run(500_000)

	b, p := baseline.Metrics(), prefetched.Metrics()
	fmt.Println("misses reduced:", p.L1IMissPerInstr < b.L1IMissPerInstr/2)
	fmt.Println("faster:", p.IPC > b.IPC)
	// Output:
	// misses reduced: true
	// faster: true
}

// List the built-in commercial workload models.
func ExampleWorkloads() {
	for _, w := range repro.Workloads() {
		fmt.Println(w.Name)
	}
	// Output:
	// DB
	// TPC-W
	// jApp
	// Web
}

// Machines are deterministic: identical configurations and seeds give
// bit-identical runs.
func ExampleMachineConfig_determinism() {
	run := func() uint64 {
		m, _ := repro.NewMachine(repro.MachineConfig{Workloads: []string{"Web"}, Seed: 7})
		m.Run(100_000)
		return m.Metrics().Cycles
	}
	fmt.Println(run() == run())
	// Output:
	// true
}
