package repro

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/codesign"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Prefetcher names accepted by MachineConfig.Prefetcher.
const (
	PrefetcherNone           = "none"
	PrefetcherNextLineAlways = "nl-always"
	PrefetcherNextLineOnMiss = "nl-miss"
	PrefetcherNextLineTagged = "nl-tagged"
	PrefetcherNext2Tagged    = "n2l-tagged"
	PrefetcherNext4Tagged    = "n4l-tagged"
	PrefetcherNext8Tagged    = "n8l-tagged"
	PrefetcherLookahead4     = "lookahead4"
	PrefetcherTarget         = "target"
	PrefetcherMarkov         = "markov"
	PrefetcherWrongPath      = "wrong-path"
	PrefetcherStreams        = "streams"
	PrefetcherDiscontinuity  = "discontinuity"
	PrefetcherDiscont2NL     = "discont-2nl"
)

// Prefetchers returns every registered prefetch-scheme name.
func Prefetchers() []string { return prefetch.SchemeNames() }

// WorkloadNames returns the built-in application names ("DB", "TPC-W",
// "jApp", "Web").
func WorkloadNames() []string { return workload.Names() }

// CacheGeometry describes one cache level.
type CacheGeometry struct {
	SizeBytes int
	Assoc     int
	LineBytes int
}

func (g CacheGeometry) internal() cache.Config {
	return cache.Config{SizeBytes: g.SizeBytes, Assoc: g.Assoc, LineBytes: g.LineBytes}
}

// MachineConfig describes a simulated machine. Zero-valued fields take
// the paper's defaults (Section 5).
type MachineConfig struct {
	// Cores is the number of cores (1 = single-core with private L2;
	// >1 = CMP sharing the L2). Default 1.
	Cores int
	// Workloads names the applications to run, cycled across cores.
	// One name gives a homogeneous machine (cores are threads of one
	// process); several give a multiprogrammed mix. Default {"DB"}.
	Workloads []string
	// Prefetcher selects the instruction-prefetch scheme (see the
	// Prefetcher* constants). Default PrefetcherNone.
	Prefetcher string
	// BypassL2 enables the paper's Section 7 install policy: prefetches
	// skip the shared L2 until proven useful.
	BypassL2 bool
	// L1I and L2 override cache geometries when non-zero.
	L1I CacheGeometry
	L2  CacheGeometry
	// DiscontinuityTableEntries overrides the prediction-table size of
	// the discontinuity prefetcher (default 8192).
	DiscontinuityTableEntries int
	// ModelWritebacks makes stores dirty cache lines and charges
	// off-chip bandwidth for dirty evictions (off by default, matching
	// the paper's read-side bandwidth accounting).
	ModelWritebacks bool
	// InsertPolicy selects where prefetched lines enter the recency
	// stack: "mru" (default, historical behaviour), "mid" or "lru".
	// Applies to both the L1-I and the L2.
	InsertPolicy string
	// TLBFill lets instruction prefetches pre-fill the I-TLB: "none"
	// (default), "primary" (both levels) or "secondary" (second level
	// only).
	TLBFill string
	// WrongPath models fetch down mispredicted paths: "off" (default),
	// "train[:depth]" (wrong-path blocks train the prefetcher) or
	// "pollute[:depth]" (they also fill the L1-I).
	WrongPath string
	// Seed makes runs reproducible; runs with equal configs and seeds
	// are bit-identical. Default 1.
	Seed uint64
}

// Machine is a runnable simulated system.
type Machine struct {
	sys *cmp.System
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("repro: invalid core count %d", cfg.Cores)
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"DB"}
	}
	if cfg.Prefetcher == "" {
		cfg.Prefetcher = PrefetcherNone
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sysCfg := cmp.DefaultConfig(cfg.Cores)
	sysCfg.PrefetcherName = cfg.Prefetcher
	sysCfg.FrontEnd.BypassL2 = cfg.BypassL2
	sysCfg.ModelWritebacks = cfg.ModelWritebacks
	if err := applyCodesign(&sysCfg, cfg); err != nil {
		return nil, err
	}
	if cfg.L1I.SizeBytes > 0 {
		sysCfg.FrontEnd.L1I = cfg.L1I.internal()
	}
	if cfg.L2.SizeBytes > 0 {
		sysCfg.Mem.L2 = cfg.L2.internal()
	}
	srcs, err := cmp.SourcesFor(cfg.Workloads, cfg.Cores, cfg.Seed)
	if err != nil {
		return nil, err
	}
	override := overrideFor(cfg)
	sys, err := cmp.New(sysCfg, srcs, override)
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys}, nil
}

// Run executes until every core has retired at least n more
// instructions.
func (m *Machine) Run(n uint64) { m.sys.Run(n) }

// ResetStats starts a fresh measurement window (typically after a
// warm-up run), preserving caches and predictor state.
func (m *Machine) ResetStats() { m.sys.ResetStats() }

// Metrics summarises the current measurement window.
type Metrics struct {
	// Instructions retired across all cores.
	Instructions uint64
	// Cycles of the slowest core (wall-clock of the chip).
	Cycles uint64
	// IPC is aggregate instructions per cycle.
	IPC float64
	// L1IMissPerInstr is instruction-cache misses per instruction.
	L1IMissPerInstr float64
	// L2IMissPerInstr is L2 instruction misses per instruction.
	L2IMissPerInstr float64
	// L2DMissPerInstr is L2 data misses per instruction.
	L2DMissPerInstr float64
	// PrefetchIssued counts initiated prefetch fills.
	PrefetchIssued uint64
	// PrefetchUseful counts prefetched lines demand-used before
	// eviction.
	PrefetchUseful uint64
	// PrefetchAccuracy is Useful/Issued.
	PrefetchAccuracy float64
	// BranchMispredictRate is wrong predictions over all predictions.
	BranchMispredictRate float64
	// FetchStallCPI, DataStallCPI and BpredStallCPI attribute cycles per
	// instruction to instruction-fetch stalls, data-miss stalls and
	// branch-mispredict refills (approximate; the remainder is issue
	// bandwidth and TLB/trap overhead).
	FetchStallCPI float64
	DataStallCPI  float64
	BpredStallCPI float64
	// MissBreakdown gives the share of L1-I misses per category name
	// (sequential, cond-taken-fwd, ..., trap).
	MissBreakdown map[string]float64
}

// Metrics returns the chip-level metrics for the current window.
func (m *Machine) Metrics() Metrics {
	m.sys.Finalize()
	t := m.sys.TotalStats()
	return metricsFrom(&t)
}

// CoreMetrics returns the metrics of a single core.
func (m *Machine) CoreMetrics(core int) (Metrics, error) {
	if core < 0 || core >= len(m.sys.Cores()) {
		return Metrics{}, fmt.Errorf("repro: core %d out of range", core)
	}
	m.sys.Finalize()
	cs := m.sys.CoreStats(core)
	return metricsFrom(cs), nil
}

func metricsFrom(t *stats.CoreStats) Metrics {
	out := Metrics{
		Instructions:     t.Instructions,
		Cycles:           t.Cycles,
		IPC:              t.IPC(),
		L1IMissPerInstr:  t.L1I.PerInstr(t.Instructions),
		L2IMissPerInstr:  t.L2I.PerInstr(t.Instructions),
		L2DMissPerInstr:  t.L2D.PerInstr(t.Instructions),
		PrefetchIssued:   t.Prefetch.Issued,
		PrefetchUseful:   t.Prefetch.Useful,
		PrefetchAccuracy: t.Prefetch.Accuracy(),
		MissBreakdown:    map[string]float64{},
	}
	if t.BranchPredictions > 0 {
		out.BranchMispredictRate = float64(t.BranchMispredicts) / float64(t.BranchPredictions)
	}
	if t.Instructions > 0 {
		out.FetchStallCPI = float64(t.FetchStallCycles) / float64(t.Instructions)
		out.DataStallCPI = float64(t.DataStallCycles) / float64(t.Instructions)
		out.BpredStallCPI = float64(t.BpredStallCycles) / float64(t.Instructions)
	}
	for c := 0; c < isa.NumMissCategories; c++ {
		cat := isa.MissCategory(c)
		out.MissBreakdown[cat.String()] = t.L1IMissBreakdown.Fraction(cat)
	}
	return out
}

// applyCodesign parses the co-design policy strings into the front-end
// and memory-system configs. Empty strings keep the historical machine.
func applyCodesign(sysCfg *cmp.Config, cfg MachineConfig) error {
	ins, err := codesign.ParseInsertion(cfg.InsertPolicy)
	if err != nil {
		return err
	}
	tf, err := codesign.ParseTLBFill(cfg.TLBFill)
	if err != nil {
		return err
	}
	wp, err := codesign.ParseWrongPath(cfg.WrongPath)
	if err != nil {
		return err
	}
	sysCfg.FrontEnd.PrefetchInsert = ins
	sysCfg.Mem.PrefetchInsert = ins
	sysCfg.FrontEnd.TLBFill = tf
	sysCfg.FrontEnd.WrongPath = wp
	return nil
}

// overrideFor returns a per-core prefetcher constructor when the config
// requires a non-registry variant, or nil.
func overrideFor(cfg MachineConfig) func(int) prefetch.Prefetcher {
	if cfg.DiscontinuityTableEntries <= 0 {
		return nil
	}
	dcfg := prefetch.DefaultDiscontinuityConfig()
	dcfg.TableEntries = cfg.DiscontinuityTableEntries
	if cfg.Prefetcher == PrefetcherDiscont2NL {
		dcfg.PrefetchAhead = 2
	}
	return func(int) prefetch.Prefetcher { return prefetch.NewDiscontinuity(dcfg) }
}

// NewMachineFromTrace builds a machine whose cores replay recorded
// traces (looping at end of trace) instead of running the synthetic
// generators — the library's equivalent of the paper's trace-driven
// methodology. One trace per core; cfg.Workloads is ignored.
func NewMachineFromTrace(cfg MachineConfig, traces [][]byte) (*Machine, error) {
	if cfg.Cores == 0 {
		cfg.Cores = len(traces)
	}
	if cfg.Cores != len(traces) {
		return nil, fmt.Errorf("repro: %d traces for %d cores", len(traces), cfg.Cores)
	}
	if cfg.Prefetcher == "" {
		cfg.Prefetcher = PrefetcherNone
	}
	srcs := make([]workload.Source, len(traces))
	for i, data := range traces {
		loop, err := trace.NewLoop(data)
		if err != nil {
			return nil, fmt.Errorf("repro: trace %d: %w", i, err)
		}
		srcs[i] = loop
	}
	sysCfg := cmp.DefaultConfig(cfg.Cores)
	sysCfg.PrefetcherName = cfg.Prefetcher
	sysCfg.FrontEnd.BypassL2 = cfg.BypassL2
	if err := applyCodesign(&sysCfg, cfg); err != nil {
		return nil, err
	}
	if cfg.L1I.SizeBytes > 0 {
		sysCfg.FrontEnd.L1I = cfg.L1I.internal()
	}
	if cfg.L2.SizeBytes > 0 {
		sysCfg.Mem.L2 = cfg.L2.internal()
	}
	sys, err := cmp.New(sysCfg, srcs, overrideFor(cfg))
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys}, nil
}
