# Development targets. The repo has no dependencies beyond the Go
# toolchain; everything here is `go` with the right flags.

GO ?= go

.PHONY: build vet test race fuzz-smoke bench bench-sweep

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the trace reader; CI runs the same smoke.
fuzz-smoke:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=10s

bench:
	$(GO) test -bench=Figure -benchmem ./...

# Sweep-throughput trajectory: writes BENCH_sweep.json (points/sec for
# cold and memoised passes, memo-hit ratio) for cross-PR comparison.
bench-sweep:
	$(GO) run ./cmd/sweepbench -o BENCH_sweep.json
