# Development targets. The repo has no dependencies beyond the Go
# toolchain; everything here is `go` with the right flags.

GO ?= go

.PHONY: build vet test race race-dist race-core race-ctlplane race-corpus race-codesign race-fork fuzz-smoke bench bench-sweep bench-dist bench-trace bench-core bench-pref bench-service advgen-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy layers (what CI runs).
race-dist:
	$(GO) test -race ./internal/dist/... ./internal/service/... ./internal/sweep/... ./internal/corpus/...

# Repeated race pass over the simulation hot path (queue/index/table
# rewrites); -count=2 catches state leaked across test-internal resets.
# ./internal/prefetch/... includes the hybrid arbitration subpackage.
race-core:
	$(GO) test -race -count=2 ./internal/core/... ./internal/prefetch/... ./internal/cmp/...

# Control-plane race pass: lease ownership handoff, SSE fan-out,
# admission buckets and the client retry loop are all cross-goroutine
# protocols — run them twice under the race detector (what CI runs).
race-ctlplane:
	$(GO) test -race -count=2 ./internal/ctlplane/... ./internal/service/... ./internal/dist/...

# Corpus race pass: GC racing ingest, chunk federation, and the trace
# record codecs — twice, so cross-test CAS state can't hide a race
# (what CI runs).
race-corpus:
	$(GO) test -race -count=2 ./internal/corpus/... ./internal/trace/...

# Co-design race pass: prefetch insertion depth, TLB fill and
# wrong-path modelling share packed per-set cache state, and the
# foundry memoises searches in a sync.Map — twice, plus -race (what CI
# runs).
race-codesign:
	$(GO) test -race -count=2 ./internal/cache/... ./internal/tlb/... ./internal/core/... ./internal/workload/... ./internal/codesign/... ./internal/foundry/...

# Fork-and-diverge race pass: RunBatchContext shares one warm snapshot
# across concurrent measurement goroutines and the waiter-retry dedup
# path hands results across goroutines — run every snapshot round-trip
# and fork differential twice under the race detector (what CI runs).
race-fork:
	$(GO) test -race -count=2 -run 'Fork|Snapshot|Warm|Batch|Waiter|LineSize' ./internal/sim/... ./internal/sweep/... ./internal/cmp/... ./internal/prefetch/... ./internal/cache/... ./internal/tlb/... ./internal/bpred/... ./internal/memory/... ./internal/core/... ./internal/workload/...

# Bounded adversarial-generator smoke: the hill-climb must beat the
# worst paper workload's L1-I miss rate (what CI runs).
advgen-smoke:
	$(GO) run ./cmd/advgen -scheme discontinuity -seed 1 -iters 8 -assert-gain 1.05 -o /tmp/adv_smoke.json

# Short fuzz passes over the trace codecs and the content-defined
# chunker; CI runs the same smoke.
fuzz-smoke:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=10s
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzRoundTripV2 -fuzztime=10s
	$(GO) test ./internal/corpus -run='^$$' -fuzz=FuzzChunker -fuzztime=10s

bench:
	$(GO) test -bench=Figure -benchmem ./...

# Sweep-throughput trajectory: writes BENCH_sweep.json (points/sec for
# cold and memoised passes, memo-hit ratio) for cross-PR comparison.
bench-sweep:
	$(GO) run ./cmd/sweepbench -o BENCH_sweep.json

# Distributed-sweep scaling trajectory: writes BENCH_dist.json
# (points/sec with 1 worker vs a 4-worker fleet over real HTTP leases).
bench-dist:
	$(GO) run ./cmd/distbench -o BENCH_dist.json

# Trace codec trajectory: writes BENCH_trace.json (v1 vs v2 encode and
# decode throughput, compression ratio, 1-vs-4-shard decode scaling,
# plus per-workload chunk-codec comparison rows — flate vs the
# delta+varint columnar pre-pass — and cross-seed chunk dedup ratios).
bench-trace:
	$(GO) run ./cmd/tracebench -o BENCH_trace.json

# Simulation hot-path trajectory: writes BENCH_core.json
# (instructions/sec per scheme × core count). The build picks up
# cmd/corebench/default.pgo automatically for profile-guided optimisation.
bench-core:
	$(GO) run ./cmd/corebench -o BENCH_core.json

# Control-plane saturation trajectory: writes BENCH_service.json
# (p50/p99/p999 job latency, sweeps/s, shed rate) from a closed-loop
# 1k-client run against an in-process daemon with admission enabled.
bench-service:
	$(GO) run ./cmd/loadgen -self -clients 1024 -duration 30s -quota-per-sec 200 -out BENCH_service.json

# Prefetcher-zoo trajectory: writes BENCH_pref.json (per-scheme
# Minstr/s, accuracy and miss coverage vs the no-prefetch baseline on
# the four paper workloads, with per-component attribution for
# hybrid:* composites).
bench-pref:
	$(GO) run ./cmd/prefbench -o BENCH_pref.json
