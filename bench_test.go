package repro

// The benchmark harness regenerates every figure of the paper's
// evaluation (see EXPERIMENTS.md for full-scale paper-vs-measured
// numbers). Each BenchmarkFigureN runs that figure's experiment at a
// reduced instruction budget per iteration and reports the headline
// metric via b.ReportMetric, so
//
//	go test -bench=Figure -benchmem
//
// both times the experiment machinery and prints the reproduced values.
// Full-scale tables come from: go run ./cmd/experiments -figure all.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/sim"
)

// benchBudget keeps each figure iteration to a few hundred milliseconds.
const (
	benchWarm    = 150_000
	benchMeasure = 300_000
)

func benchEngine() *sim.Engine {
	return sim.NewEngine(benchWarm, benchMeasure, 1)
}

func db() sim.Workload { return sim.Workload{Name: "DB", Apps: []string{"DB"}} }

// BenchmarkFigure1 regenerates the I-cache geometry study and reports
// the default-configuration DB miss rate (% per instruction).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		r := e.MustRun(sim.RunSpec{Workload: db(), Cores: 1, Scheme: "none",
			L1I: cache.Config{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64}})
		small := e.MustRun(sim.RunSpec{Workload: db(), Cores: 1, Scheme: "none",
			L1I: cache.Config{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64}})
		def := 100 * r.Total.L1I.PerInstr(r.Total.Instructions)
		b.ReportMetric(def, "L1Imiss%/instr")
		b.ReportMetric(100*small.Total.L1I.PerInstr(small.Total.Instructions)/def, "16KB/32KB")
	}
}

// BenchmarkFigure2 regenerates the L2 instruction miss-rate study and
// reports the CMP-vs-single-core ratio for DB at 2 MB.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		one := e.MustRun(sim.RunSpec{Workload: db(), Cores: 1, Scheme: "none"})
		four := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none"})
		r1 := one.Total.L2I.PerInstr(one.Total.Instructions)
		r4 := four.Total.L2I.PerInstr(four.Total.Instructions)
		b.ReportMetric(100*r4, "cmpL2I%/instr")
		if r1 > 0 {
			b.ReportMetric(r4/r1, "cmp/single")
		}
	}
}

// BenchmarkFigure3 regenerates the miss-breakdown study and reports the
// sequential share of DB's L1-I misses (paper: 40-60%).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		r := e.MustRun(sim.RunSpec{Workload: db(), Cores: 1, Scheme: "none"})
		b.ReportMetric(100*r.Total.L1IMissBreakdown.SuperFraction(isa.SuperSequential), "seq%")
		b.ReportMetric(100*r.Total.L1IMissBreakdown.SuperFraction(isa.SuperBranch), "branch%")
		b.ReportMetric(100*r.Total.L1IMissBreakdown.SuperFraction(isa.SuperFunction), "function%")
	}
}

// BenchmarkFigure4 regenerates the limits study and reports the speedup
// from eliminating all instruction misses on the DB CMP.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		base := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none"})
		var oracle [isa.NumSuperCategories]bool
		oracle[isa.SuperSequential] = true
		oracle[isa.SuperBranch] = true
		oracle[isa.SuperFunction] = true
		all := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none", Oracle: oracle})
		b.ReportMetric(all.Total.IPC()/base.Total.IPC(), "oracleSpeedupX")
	}
}

// BenchmarkFigure5 regenerates the miss-rate study and reports the
// discontinuity prefetcher's normalized residual L1-I miss rate on DB.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		base := e.MustRun(sim.RunSpec{Workload: db(), Cores: 1, Scheme: "none"})
		disc := e.MustRun(sim.RunSpec{Workload: db(), Cores: 1, Scheme: "discontinuity"})
		b.ReportMetric(float64(disc.Total.L1I.Misses)/float64(base.Total.L1I.Misses), "residualL1I")
		b.ReportMetric(float64(disc.Total.L2I.Misses)/float64(base.Total.L2I.Misses), "residualL2I")
	}
}

// BenchmarkFigure6 reports the conventional-install (polluting) speedup
// of the discontinuity prefetcher on the DB CMP.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		base := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none"})
		disc := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discontinuity"})
		b.ReportMetric(disc.Total.IPC()/base.Total.IPC(), "speedupX")
	}
}

// BenchmarkFigure7 reports the L2 data-miss inflation caused by
// conventional prefetch installs on the DB CMP.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		base := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none"})
		disc := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discontinuity"})
		b.ReportMetric(float64(disc.Total.L2D.Misses)/float64(base.Total.L2D.Misses), "L2DinflationX")
	}
}

// BenchmarkFigure8 reports the bypass-install speedup of the
// discontinuity prefetcher on the DB CMP (the paper's headline result).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		base := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none"})
		disc := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discontinuity", Bypass: true})
		b.ReportMetric(disc.Total.IPC()/base.Total.IPC(), "speedupX")
	}
}

// BenchmarkFigure9 reports prefetch accuracy of the 4-line and 2-line
// discontinuity variants on the DB CMP.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		d4 := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discontinuity", Bypass: true})
		d2 := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discont-2nl", Bypass: true})
		b.ReportMetric(100*d4.Total.Prefetch.Accuracy(), "acc4nl%")
		b.ReportMetric(100*d2.Total.Prefetch.Accuracy(), "acc2nl%")
	}
}

// BenchmarkFigure10 reports L1 miss coverage at 8192- and 256-entry
// discontinuity tables on the DB CMP.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEngine()
		base := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "none"})
		big := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discontinuity", Bypass: true, TableEntries: 8192})
		small := e.MustRun(sim.RunSpec{Workload: db(), Cores: 4, Scheme: "discontinuity", Bypass: true, TableEntries: 256})
		cov := func(r sim.Result) float64 {
			return 100 * (1 - float64(r.Total.L1I.Misses)/float64(base.Total.L1I.Misses))
		}
		b.ReportMetric(cov(big), "cov8192%")
		b.ReportMetric(cov(small), "cov256%")
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed
// (instructions simulated per second) on the paper's headline
// configuration.
func BenchmarkSimulationThroughput(b *testing.B) {
	m, err := NewMachine(MachineConfig{
		Cores: 4, Workloads: []string{"DB"},
		Prefetcher: PrefetcherDiscontinuity, BypassL2: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Run(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(10_000)
	}
	b.ReportMetric(float64(b.N*10_000*4)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkWorkloadGeneration measures block-stream generation alone.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, app := range WorkloadNames() {
		b.Run(app, func(b *testing.B) {
			var buf discard
			if err := RecordTrace(&buf, app, 1, uint64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }
