// trace_workflow demonstrates the library's trace-driven methodology
// (the paper's own): record a workload's basic-block stream once,
// characterise it offline, then replay the identical stream through
// several machine configurations — every configuration sees exactly the
// same instructions, as in the paper's trace-driven simulator.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// 1. Record: capture the stream once.
	var trace bytes.Buffer
	const blocks = 400_000
	if err := repro.RecordTrace(&trace, "TPC-W", 42, blocks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d blocks of TPC-W (%.1f MB trace)\n\n",
		blocks, float64(trace.Len())/(1<<20))

	// 2. Characterise: what is in this stream?
	fmt.Println("--- offline characterisation ---")
	if err := repro.AnalyzeTrace(os.Stdout, bytes.NewReader(trace.Bytes())); err != nil {
		log.Fatal(err)
	}

	// 3. Replay: the same stream through three machines.
	fmt.Println("\n--- trace-driven simulation ---")
	for _, cfg := range []struct {
		label      string
		prefetcher string
		bypass     bool
	}{
		{"no prefetch", repro.PrefetcherNone, false},
		{"next-4-lines", repro.PrefetcherNext4Tagged, true},
		{"discontinuity", repro.PrefetcherDiscontinuity, true},
	} {
		m, err := repro.NewMachineFromTrace(repro.MachineConfig{
			Prefetcher: cfg.prefetcher,
			BypassL2:   cfg.bypass,
		}, [][]byte{trace.Bytes()})
		if err != nil {
			log.Fatal(err)
		}
		m.Run(1_000_000)
		m.ResetStats()
		m.Run(2_000_000)
		g := m.Metrics()
		fmt.Printf("%-14s IPC %.3f   L1-I miss %.3f%%/instr\n",
			cfg.label, g.IPC, 100*g.L1IMissPerInstr)
	}
}
