// Quickstart: build the paper's 4-way CMP running the database
// workload, compare no prefetching against the discontinuity prefetcher
// with the L2-bypass install policy, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(prefetcher string, bypass bool) repro.Metrics {
	m, err := repro.NewMachine(repro.MachineConfig{
		Cores:      4,
		Workloads:  []string{"DB"},
		Prefetcher: prefetcher,
		BypassL2:   bypass,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Run(1_000_000) // warm caches and predictors
	m.ResetStats()
	m.Run(2_000_000) // measure
	return m.Metrics()
}

func main() {
	fmt.Println("4-way CMP, database workload (HPCA'05 configuration)")
	fmt.Println()

	base := run(repro.PrefetcherNone, false)
	fmt.Printf("no prefetch:    IPC %.3f   L1-I miss %.2f%%/instr   L2-I miss %.3f%%/instr\n",
		base.IPC, 100*base.L1IMissPerInstr, 100*base.L2IMissPerInstr)

	disc := run(repro.PrefetcherDiscontinuity, true)
	fmt.Printf("discontinuity:  IPC %.3f   L1-I miss %.2f%%/instr   L2-I miss %.3f%%/instr\n",
		disc.IPC, 100*disc.L1IMissPerInstr, 100*disc.L2IMissPerInstr)

	fmt.Println()
	fmt.Printf("speedup                 %.2fx\n", disc.IPC/base.IPC)
	fmt.Printf("L1-I misses eliminated  %.0f%%\n", 100*(1-disc.L1IMissPerInstr/base.L1IMissPerInstr))
	fmt.Printf("L2-I misses eliminated  %.0f%%\n", 100*(1-disc.L2IMissPerInstr/base.L2IMissPerInstr))
	fmt.Printf("prefetch accuracy       %.0f%%\n", 100*disc.PrefetchAccuracy)
}
