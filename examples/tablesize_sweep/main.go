// tablesize_sweep reproduces the Figure 10 trade-off interactively: how
// much discontinuity-table capacity does the prefetcher actually need?
// It sweeps the prediction table from 8192 down to 64 entries on one
// workload and reports miss coverage and speedup, against the
// next-4-line sequential prefetcher as the no-table reference.
//
// Usage: tablesize_sweep [app]   (default DB)
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func measure(app, scheme string, entries int) repro.Metrics {
	m, err := repro.NewMachine(repro.MachineConfig{
		Cores:                     4,
		Workloads:                 []string{app},
		Prefetcher:                scheme,
		BypassL2:                  scheme != repro.PrefetcherNone,
		DiscontinuityTableEntries: entries,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Run(1_000_000)
	m.ResetStats()
	m.Run(2_000_000)
	return m.Metrics()
}

func main() {
	app := "DB"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}

	base := measure(app, repro.PrefetcherNone, 0)
	fmt.Printf("discontinuity table-size sweep on %s (4-way CMP)\n", app)
	fmt.Printf("baseline (no prefetch): IPC %.3f, L1-I miss %.3f%%/instr\n\n", base.IPC, 100*base.L1IMissPerInstr)
	fmt.Printf("%-22s %12s %12s %9s\n", "predictor", "L1 coverage", "L2 coverage", "speedup")

	for _, entries := range []int{8192, 4096, 2048, 1024, 512, 256, 128, 64} {
		g := measure(app, repro.PrefetcherDiscontinuity, entries)
		fmt.Printf("%5d-entry table      %11.1f%% %11.1f%% %8.3fx\n",
			entries,
			100*(1-g.L1IMissPerInstr/base.L1IMissPerInstr),
			100*(1-g.L2IMissPerInstr/base.L2IMissPerInstr),
			g.IPC/base.IPC)
	}

	n4l := measure(app, repro.PrefetcherNext4Tagged, 0)
	fmt.Printf("%-22s %11.1f%% %11.1f%% %8.3fx\n",
		"next-4-lines (no table)",
		100*(1-n4l.L1IMissPerInstr/base.L1IMissPerInstr),
		100*(1-n4l.L2IMissPerInstr/base.L2IMissPerInstr),
		n4l.IPC/base.IPC)

	fmt.Println("\nThe paper's observation holds: the table can shrink 4x from")
	fmt.Println("8192 entries with minimal coverage loss, and even tiny tables")
	fmt.Println("beat the purely sequential prefetcher.")
}
