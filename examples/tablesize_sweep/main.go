// tablesize_sweep reproduces the Figure 10 trade-off interactively: how
// much discontinuity-table capacity does the prefetcher actually need?
// It declares the question as a design-space sweep — table entries from
// 8192 down to 64 on one workload, with the next-4-line sequential
// prefetcher as the no-table comparison — and lets internal/sweep
// expand the grid, shard the points, and derive coverage, speedup and
// the storage-vs-speedup pareto front.
//
// Usage: tablesize_sweep [app]   (default DB)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	app := "DB"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}

	spec := sweep.Spec{
		Name:         "discontinuity table-size sweep on " + app,
		Schemes:      []string{"discontinuity", "n4l-tagged"},
		Workloads:    []string{app},
		Cores:        []int{4},
		TableEntries: []int{8192, 4096, 2048, 1024, 512, 256, 128, 64},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := &sweep.Runner{Engine: sim.NewEngine(1_000_000, 2_000_000, 1)}
	out, err := runner.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	art := out.Artifact()

	fmt.Printf("discontinuity table-size sweep on %s (4-way CMP)\n", app)
	for _, row := range art.Points {
		if row.Baseline {
			fmt.Printf("baseline (no prefetch): IPC %.3f, L1-I miss %.3f%%/instr\n\n",
				row.IPC, 100*row.L1IMissPerInstr)
		}
	}
	fmt.Printf("%-23s %12s %12s %9s\n", "predictor", "L1 coverage", "L2 coverage", "speedup")
	for _, row := range art.Points {
		switch {
		case row.Baseline:
		case row.Point.Scheme == "discontinuity":
			fmt.Printf("%5d-entry table       %11.1f%% %11.1f%% %8.3fx\n",
				row.Point.TableEntries, 100*row.L1IMissReduction, 100*row.L2IMissReduction, row.Speedup)
		default:
			fmt.Printf("%-23s %11.1f%% %11.1f%% %8.3fx\n",
				"next-4-lines (no table)", 100*row.L1IMissReduction, 100*row.L2IMissReduction, row.Speedup)
		}
	}

	fmt.Println("\nstorage cost vs speedup (pareto front marked *):")
	for _, p := range art.Pareto {
		mark := " "
		if p.OnFront {
			mark = "*"
		}
		fmt.Printf("%s %5d entries = %6.1f KB  %8.3fx\n",
			mark, p.TableEntries, float64(p.TableBits)/8192, p.Speedup)
	}

	fmt.Println("\nThe paper's observation holds: the table can shrink 4x from")
	fmt.Println("8192 entries with minimal coverage loss, and even tiny tables")
	fmt.Println("beat the purely sequential prefetcher.")
}
