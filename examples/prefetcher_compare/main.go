// prefetcher_compare races every built-in instruction-prefetch scheme on
// one workload (Figure 5/6-style study): per-scheme miss elimination,
// accuracy and speedup over the no-prefetch baseline.
//
// Usage: prefetcher_compare [app]   (default jApp)
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	app := "jApp"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}

	schemes := []string{
		repro.PrefetcherNone,
		repro.PrefetcherNextLineOnMiss,
		repro.PrefetcherNextLineTagged,
		repro.PrefetcherNext4Tagged,
		repro.PrefetcherLookahead4,
		repro.PrefetcherTarget,
		"markov",
		"wrong-path",
		repro.PrefetcherDiscont2NL,
		repro.PrefetcherDiscontinuity,
	}

	fmt.Printf("prefetcher comparison on %s (4-way CMP, L2-bypass installs)\n\n", app)
	fmt.Printf("%-16s %8s %10s %10s %10s %9s\n",
		"scheme", "IPC", "L1-I miss", "L2-I miss", "accuracy", "speedup")

	var baseIPC float64
	for _, scheme := range schemes {
		m, err := repro.NewMachine(repro.MachineConfig{
			Cores:      4,
			Workloads:  []string{app},
			Prefetcher: scheme,
			BypassL2:   scheme != repro.PrefetcherNone,
		})
		if err != nil {
			log.Fatal(err)
		}
		m.Run(1_000_000)
		m.ResetStats()
		m.Run(2_000_000)
		g := m.Metrics()
		if scheme == repro.PrefetcherNone {
			baseIPC = g.IPC
		}
		acc := "-"
		if g.PrefetchIssued > 0 {
			acc = fmt.Sprintf("%.1f%%", 100*g.PrefetchAccuracy)
		}
		fmt.Printf("%-16s %8.3f %9.3f%% %9.4f%% %10s %8.3fx\n",
			scheme, g.IPC, 100*g.L1IMissPerInstr, 100*g.L2IMissPerInstr,
			acc, g.IPC/baseIPC)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - next-line schemes only cover sequential misses;")
	fmt.Println("  - next-4-lines also catches short taken branches;")
	fmt.Println("  - the discontinuity prefetcher adds calls and long branches,")
	fmt.Println("    trading prefetch accuracy for the best miss coverage;")
	fmt.Println("  - discont-2nl recovers accuracy at a small coverage cost.")
}
