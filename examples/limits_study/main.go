// limits_study reproduces the paper's Figure 4 narrative via the public
// API: how much performance is on the table if classes of instruction
// misses could be eliminated perfectly — and how close the real
// discontinuity prefetcher gets to that bound.
//
// Because the oracle lives below the public API, the upper bound here is
// approximated by an "infinite L1-I" machine (a 16 MB instruction cache
// swallows the entire footprint), which eliminates all L1 instruction
// misses the way the Figure 4 oracle does.
package main

import (
	"fmt"
	"log"

	"repro"
)

func measure(cfg repro.MachineConfig) repro.Metrics {
	m, err := repro.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.Run(1_000_000)
	m.ResetStats()
	m.Run(2_000_000)
	return m.Metrics()
}

func main() {
	apps := []string{"DB", "TPC-W", "jApp", "Web"}
	fmt.Println("limits study: how much of the ideal gain does prefetching capture?")
	fmt.Println("(4-way CMP; ideal = all instruction misses eliminated)")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %12s %10s\n", "app", "baseline IPC", "ideal", "discontinuity", "captured")

	for _, app := range apps {
		base := measure(repro.MachineConfig{Cores: 4, Workloads: []string{app}})
		ideal := measure(repro.MachineConfig{Cores: 4, Workloads: []string{app},
			L1I: repro.CacheGeometry{SizeBytes: 16 << 20, Assoc: 4, LineBytes: 64}})
		disc := measure(repro.MachineConfig{Cores: 4, Workloads: []string{app},
			Prefetcher: repro.PrefetcherDiscontinuity, BypassL2: true})

		idealX := ideal.IPC / base.IPC
		discX := disc.IPC / base.IPC
		captured := (discX - 1) / (idealX - 1)
		fmt.Printf("%-8s %12.3f %11.2fx %12.2fx %9.0f%%\n",
			app, base.IPC, idealX, discX, 100*captured)
	}

	fmt.Println()
	fmt.Println("The gap between 'ideal' and 'discontinuity' is the paper's")
	fmt.Println("Section 6 story: imperfect coverage, imperfect timeliness, and")
	fmt.Println("the bandwidth cost of inaccurate prefetches.")
}
