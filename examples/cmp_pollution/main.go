// cmp_pollution demonstrates the paper's Section 6/7 finding: aggressive
// instruction prefetching into a shared L2 evicts data and eats its own
// gains; installing prefetches only once proven useful (the L2-bypass
// policy) recovers them.
//
// It runs the multiprogrammed mix on the 4-way CMP three ways:
// no prefetch, discontinuity prefetch with conventional installs, and
// discontinuity prefetch with bypass installs.
package main

import (
	"fmt"
	"log"

	"repro"
)

type row struct {
	label   string
	scheme  string
	bypass  bool
	metrics repro.Metrics
}

func main() {
	rows := []row{
		{label: "no prefetch", scheme: repro.PrefetcherNone},
		{label: "discontinuity -> L2 (conventional)", scheme: repro.PrefetcherDiscontinuity},
		{label: "discontinuity, L2 bypass (paper)", scheme: repro.PrefetcherDiscontinuity, bypass: true},
	}

	for i := range rows {
		m, err := repro.NewMachine(repro.MachineConfig{
			Cores:      4,
			Workloads:  []string{"DB", "TPC-W", "jApp", "Web"}, // the Mix
			Prefetcher: rows[i].scheme,
			BypassL2:   rows[i].bypass,
		})
		if err != nil {
			log.Fatal(err)
		}
		m.Run(1_200_000)
		m.ResetStats()
		m.Run(2_400_000)
		rows[i].metrics = m.Metrics()
	}

	base := rows[0].metrics
	fmt.Println("L2 pollution study: multiprogrammed mix on the 4-way CMP")
	fmt.Println()
	fmt.Printf("%-36s %8s %12s %14s %9s\n", "configuration", "IPC", "L2-I miss", "L2-D miss", "speedup")
	for _, r := range rows {
		g := r.metrics
		fmt.Printf("%-36s %8.3f %11.4f%% %12.4f%%%s %8.3fx\n",
			r.label, g.IPC, 100*g.L2IMissPerInstr, 100*g.L2DMissPerInstr,
			dataNote(g, base), g.IPC/base.IPC)
	}

	conv, byp := rows[1].metrics, rows[2].metrics
	fmt.Println()
	fmt.Printf("conventional installs inflate L2 data misses by %.1f%%;\n",
		100*(conv.L2DMissPerInstr/base.L2DMissPerInstr-1))
	fmt.Printf("the bypass policy holds that to %.1f%% and lifts the speedup\n",
		100*(byp.L2DMissPerInstr/base.L2DMissPerInstr-1))
	fmt.Printf("from %.3fx to %.3fx.\n", conv.IPC/base.IPC, byp.IPC/base.IPC)
}

func dataNote(g, base repro.Metrics) string {
	if g.L2DMissPerInstr > base.L2DMissPerInstr*1.005 {
		return " (+)"
	}
	return "    "
}
