// Command tracebench measures trace codec throughput and writes a
// BENCH_trace.json snapshot so successive changes can track the trend.
// It records one generator stream through both container formats and
// reports encode and decode rates (MB/s and blocks/s) for the flat v1
// stream and the chunked v2 container, the v2 compression ratio and
// bits/block, and how the v2 sharded chunk decode scales from 1 to 4
// goroutines.
//
// It also compares the corpus chunk codecs across the four paper
// workloads: per-chunk flate-only vs the delta+varint columnar
// pre-pass (compressed size, encode/decode MB/s) plus the cross-seed
// chunk dedup ratio the content-defined chunker achieves between two
// captures of the same profile, written as codec_comparison rows.
//
// Usage:
//
//	tracebench [-app DB] [-n blocks] [-seed n] [-chunk records]
//	           [-codec-n blocks] [-o BENCH_trace.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// report is the BENCH_trace.json schema.
type report struct {
	Name       string    `json:"name"`
	Timestamp  time.Time `json:"timestamp"`
	GoMaxProcs int       `json:"gomaxprocs"`
	App        string    `json:"app"`
	Blocks     uint64    `json:"blocks"`
	Seed       uint64    `json:"seed"`
	ChunkRecs  int       `json:"chunk_records"`

	V1Bytes        int     `json:"v1_bytes"`
	V2Bytes        int     `json:"v2_bytes"`
	V2Compression  float64 `json:"v2_compression_ratio"` // v1/v2
	V2BitsPerBlock float64 `json:"v2_bits_per_block"`

	V1EncodeMBPerSec      float64 `json:"v1_encode_mb_per_sec"`
	V1EncodeBlocksPerSec  float64 `json:"v1_encode_blocks_per_sec"`
	V2EncodeMBPerSec      float64 `json:"v2_encode_mb_per_sec"`
	V2EncodeBlocksPerSec  float64 `json:"v2_encode_blocks_per_sec"`
	V1DecodeMBPerSec      float64 `json:"v1_decode_mb_per_sec"`
	V1DecodeBlocksPerSec  float64 `json:"v1_decode_blocks_per_sec"`
	V2DecodeMBPerSec      float64 `json:"v2_decode_mb_per_sec"`
	V2DecodeBlocksPerSec  float64 `json:"v2_decode_blocks_per_sec"`
	Shard1BlocksPerSec    float64 `json:"shard1_decode_blocks_per_sec"`
	Shard4BlocksPerSec    float64 `json:"shard4_decode_blocks_per_sec"`
	ShardDecodeSpeedup4x1 float64 `json:"shard_decode_speedup_4x1"`

	// Codecs compares the corpus chunk codecs per paper workload.
	Codecs []codecRow `json:"codec_comparison"`
}

// codecRow is one workload's chunk-codec comparison. ColumnarGain > 1
// means the delta+varint pre-pass compressed smaller than flate
// alone; DecodeThroughputRatio is columnar/flate decode speed (1.0 =
// parity, < 0.9 would be a >10% decode regression).
type codecRow struct {
	App                    string  `json:"app"`
	Blocks                 uint64  `json:"blocks"`
	RawBytes               int     `json:"raw_bytes"`
	FlateBytes             int     `json:"flate_bytes"`
	ColumnarBytes          int     `json:"columnar_bytes"`
	ColumnarGain           float64 `json:"columnar_gain"`
	FlateEncodeMBPerSec    float64 `json:"flate_encode_mb_per_sec"`
	ColumnarEncodeMBPerSec float64 `json:"columnar_encode_mb_per_sec"`
	FlateDecodeMBPerSec    float64 `json:"flate_decode_mb_per_sec"`
	ColumnarDecodeMBPerSec float64 `json:"columnar_decode_mb_per_sec"`
	DecodeThroughputRatio  float64 `json:"decode_throughput_ratio"`
	CrossSeedDedupRatio    float64 `json:"cross_seed_dedup_ratio"`
}

func main() {
	var (
		app    = flag.String("app", "DB", "workload to record")
		n      = flag.Uint64("n", 500_000, "blocks per pass")
		seed   = flag.Uint64("seed", 1, "stream seed")
		chunk  = flag.Int("chunk", 0, "v2 blocks per chunk (0 = default)")
		codecN = flag.Uint64("codec-n", 120_000, "blocks per workload for the chunk-codec comparison (0 = skip)")
		out    = flag.String("o", "BENCH_trace.json", "output report path")
	)
	flag.Parse()

	prof, err := workload.ByName(*app)
	if err != nil {
		fatal(err)
	}
	prog, err := workload.BuildProgram(prof, 0)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Name:       "trace",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		App:        *app,
		Blocks:     *n,
		Seed:       *seed,
		ChunkRecs:  *chunk,
	}

	// Encode passes. Each uses a fresh generator so the streams are
	// identical; buffers are kept for the decode passes.
	var v1 bytes.Buffer
	start := time.Now()
	if err := trace.Record(&v1, *app, 0, workload.NewGenerator(prog, *seed), *n); err != nil {
		fatal(err)
	}
	rep.V1EncodeMBPerSec, rep.V1EncodeBlocksPerSec = rates(v1.Len(), *n, time.Since(start))

	var v2 bytes.Buffer
	start = time.Now()
	if err := trace.RecordV2(&v2, *app, 0, workload.NewGenerator(prog, *seed), *n, *chunk); err != nil {
		fatal(err)
	}
	rep.V2EncodeMBPerSec, rep.V2EncodeBlocksPerSec = rates(v2.Len(), *n, time.Since(start))

	rep.V1Bytes, rep.V2Bytes = v1.Len(), v2.Len()
	rep.V2Compression = float64(v1.Len()) / float64(v2.Len())
	rep.V2BitsPerBlock = float64(v2.Len()*8) / float64(*n)

	// Streaming decode passes (full validation: v2 checks every chunk
	// CRC and count on the way past).
	start = time.Now()
	drain(v1.Bytes(), *n)
	rep.V1DecodeMBPerSec, rep.V1DecodeBlocksPerSec = rates(v1.Len(), *n, time.Since(start))
	start = time.Now()
	drain(v2.Bytes(), *n)
	rep.V2DecodeMBPerSec, rep.V2DecodeBlocksPerSec = rates(v2.Len(), *n, time.Since(start))

	// Sharded decode scaling over the chunk index.
	ir, err := trace.OpenIndexed(bytes.NewReader(v2.Bytes()), int64(v2.Len()))
	if err != nil {
		fatal(err)
	}
	rep.Shard1BlocksPerSec = shardRate(ir, 1, *n)
	rep.Shard4BlocksPerSec = shardRate(ir, 4, *n)
	rep.ShardDecodeSpeedup4x1 = rep.Shard4BlocksPerSec / rep.Shard1BlocksPerSec

	if *codecN > 0 {
		rep.Codecs, err = codecComparison(*codecN, *seed)
		if err != nil {
			fatal(err)
		}
	}

	rep.Timestamp = time.Now().UTC()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"tracebench: %d blocks, v2 %.2fx smaller (%.1f bits/block), decode v1 %.1f MB/s v2 %.1f MB/s, shard x4 %.2fx -> %s\n",
		*n, rep.V2Compression, rep.V2BitsPerBlock, rep.V1DecodeMBPerSec, rep.V2DecodeMBPerSec,
		rep.ShardDecodeSpeedup4x1, *out)
	for _, row := range rep.Codecs {
		fmt.Fprintf(os.Stderr,
			"tracebench: %-6s columnar %.3fx vs flate, decode ratio %.2f, cross-seed dedup %.2f\n",
			row.App, row.ColumnarGain, row.DecodeThroughputRatio, row.CrossSeedDedupRatio)
	}
}

// rates converts one pass into (MB/s, blocks/s).
func rates(nbytes int, blocks uint64, d time.Duration) (float64, float64) {
	s := d.Seconds()
	if s <= 0 {
		return 0, 0
	}
	return float64(nbytes) / (1 << 20) / s, float64(blocks) / s
}

// drain stream-decodes a container to the end, verifying the count.
func drain(raw []byte, want uint64) {
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		fatal(err)
	}
	var b isa.Block
	var got uint64
	for {
		err := r.Read(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		got++
	}
	if got != want {
		fatal(fmt.Errorf("decoded %d blocks, want %d", got, want))
	}
}

// shardRate decodes every chunk across the given number of goroutines
// and returns blocks/s.
func shardRate(ir *trace.IndexedReader, shards int, blocks uint64) float64 {
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < ir.NumChunks(); i += shards {
				if _, err := ir.DecodeChunk(i); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}
	s := time.Since(start).Seconds()
	if s <= 0 {
		return 0
	}
	return float64(blocks) / s
}

// paperApps are the four commercial workloads the paper evaluates.
var paperApps = []string{"DB", "TPC-W", "jApp", "Web"}

// codecComparison measures, per paper workload, how the two chunk
// codecs compress and decode ~8 KiB record-aligned groups of the
// stream, and what chunk dedup ratio a second same-profile capture
// (different seed) achieves against the first in a throwaway store.
func codecComparison(n, seed uint64) ([]codecRow, error) {
	var rows []codecRow
	for _, app := range paperApps {
		prof, err := workload.ByName(app)
		if err != nil {
			return nil, err
		}
		prog, err := workload.BuildProgram(prof, 0)
		if err != nil {
			return nil, err
		}

		// Record-aligned groups sized like the store's average chunk.
		gen := workload.NewGenerator(prog, seed)
		blocks := make([]isa.Block, n)
		for i := range blocks {
			gen.Next(&blocks[i])
		}
		const groupRecords = 512 // ~8-16 KiB of raw record bytes
		type group struct {
			blocks []isa.Block
			raw    []byte
		}
		var groups []group
		rawTotal := 0
		for off := uint64(0); off < n; off += groupRecords {
			end := min(off+groupRecords, n)
			g := group{blocks: blocks[off:end]}
			g.raw = corpus.RawRecords(g.blocks)
			rawTotal += len(g.raw)
			groups = append(groups, g)
		}

		row := codecRow{App: app, Blocks: n, RawBytes: rawTotal}
		for _, codec := range []byte{corpus.CodecFlate, corpus.CodecColumnar} {
			type enc struct {
				encLen  int
				payload []byte
			}
			encs := make([]enc, len(groups))
			start := time.Now()
			total := 0
			for i, g := range groups {
				encLen, payload, err := corpus.EncodePayload(codec, g.blocks, g.raw)
				if err != nil {
					return nil, err
				}
				encs[i] = enc{encLen, payload}
				total += len(payload)
			}
			encMBs, _ := rates(rawTotal, n, time.Since(start))
			start = time.Now()
			for i := range groups {
				got, err := corpus.DecodePayload(codec, encs[i].payload, encs[i].encLen)
				if err != nil {
					return nil, err
				}
				if len(got) != len(groups[i].blocks) {
					return nil, fmt.Errorf("%s: codec %d round-trip lost records", app, codec)
				}
			}
			decMBs, _ := rates(rawTotal, n, time.Since(start))
			switch codec {
			case corpus.CodecFlate:
				row.FlateBytes, row.FlateEncodeMBPerSec, row.FlateDecodeMBPerSec = total, encMBs, decMBs
			case corpus.CodecColumnar:
				row.ColumnarBytes, row.ColumnarEncodeMBPerSec, row.ColumnarDecodeMBPerSec = total, encMBs, decMBs
			}
		}
		row.ColumnarGain = float64(row.FlateBytes) / float64(row.ColumnarBytes)
		if row.FlateDecodeMBPerSec > 0 {
			row.DecodeThroughputRatio = row.ColumnarDecodeMBPerSec / row.FlateDecodeMBPerSec
		}

		// Cross-seed dedup through the real CDC ingest path.
		dir, err := os.MkdirTemp("", "tracebench-corpus-*")
		if err != nil {
			return nil, err
		}
		store, err := corpus.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if _, err := store.Capture(workload.NewGenerator(prog, seed), app, 0, n, 0); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		twin, err := store.Capture(workload.NewGenerator(prog, seed+1), app, 0, n, 0)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		row.CrossSeedDedupRatio = twin.Dedup.DedupRatio
		os.RemoveAll(dir)

		rows = append(rows, row)
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
