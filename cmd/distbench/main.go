// Command distbench measures distributed-sweep throughput and writes a
// BENCH_dist.json snapshot so successive changes can track the trend.
// It stands up the real coordinator HTTP surface in-process (an
// httptest server mounting dist.Handler exactly as iprefetchd does) and
// runs the same representative grid twice: once with a single worker,
// once with a small fleet. The report carries points/sec for both
// fleet sizes and the scaling ratio between them; every worker is a
// full dist.Worker with its own engine, so lease traffic, heartbeats
// and point submission all cross the HTTP boundary.
//
// Usage:
//
//	distbench [-n instrs] [-warm instrs] [-seed n] [-fleet n]
//	          [-shard n] [-o BENCH_dist.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/sweep"
)

// report is the BENCH_dist.json schema.
type report struct {
	Name          string    `json:"name"`
	Timestamp     time.Time `json:"timestamp"`
	GoMaxProcs    int       `json:"gomaxprocs"`
	WarmInstrs    uint64    `json:"warm_instrs"`
	MeasureInstrs uint64    `json:"measure_instrs"`
	Seed          uint64    `json:"seed"`
	ShardSize     int       `json:"shard_size"`
	FleetSize     int       `json:"fleet_size"`

	GridPoints         int     `json:"grid_points"`
	SoloSeconds        float64 `json:"solo_seconds"`
	SoloPointsPerSec   float64 `json:"solo_points_per_sec"`
	FleetSeconds       float64 `json:"fleet_seconds"`
	FleetPointsPerSec  float64 `json:"fleet_points_per_sec"`
	FleetSpeedup       float64 `json:"fleet_speedup"`
	LeasesGranted      uint64  `json:"leases_granted"`
	PointsPerLeaseCall float64 `json:"points_per_lease"`
}

func main() {
	var (
		measure = flag.Uint64("n", 200_000, "measured instructions per core per point")
		warm    = flag.Uint64("warm", 100_000, "warm-up instructions per core per point")
		seed    = flag.Uint64("seed", 1, "workload seed")
		fleet   = flag.Int("fleet", 4, "worker count for the fleet pass")
		shard   = flag.Int("shard", 2, "grid points per lease")
		out     = flag.String("o", "BENCH_dist.json", "output report path")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The same representative grid sweepbench uses (10 points), with the
	// budgets pinned so every coordinator derives the same sweep id.
	spec := sweep.Spec{
		Name:          "bench",
		Schemes:       []string{"discontinuity", "nl-miss"},
		Workloads:     []string{"DB", "TPC-W"},
		Cores:         []int{1},
		TableEntries:  []int{512, 1024, 2048},
		WarmInstrs:    *warm,
		MeasureInstrs: *measure,
		Seed:          *seed,
	}

	soloSecs, points, _, err := runFleet(ctx, spec, 1, *shard)
	if err != nil {
		fatal(err)
	}
	fleetSecs, _, granted, err := runFleet(ctx, spec, *fleet, *shard)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Name:          "dist",
		Timestamp:     time.Now().UTC(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		WarmInstrs:    *warm,
		MeasureInstrs: *measure,
		Seed:          *seed,
		ShardSize:     *shard,
		FleetSize:     *fleet,

		GridPoints:        points,
		SoloSeconds:       soloSecs,
		SoloPointsPerSec:  float64(points) / soloSecs,
		FleetSeconds:      fleetSecs,
		FleetPointsPerSec: float64(points) / fleetSecs,
		FleetSpeedup:      soloSecs / fleetSecs,
		LeasesGranted:     granted,
	}
	if granted > 0 {
		rep.PointsPerLeaseCall = float64(points) / float64(granted)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("distbench: %d points  solo %.1f pts/s  fleet(%d) %.1f pts/s  speedup %.2fx  -> %s\n",
		points, rep.SoloPointsPerSec, *fleet, rep.FleetPointsPerSec, rep.FleetSpeedup, *out)
}

// runFleet executes one full distributed sweep against a fresh
// coordinator with n workers pulling leases over HTTP, and returns the
// wall-clock seconds from submission to completion.
func runFleet(ctx context.Context, spec sweep.Spec, n, shard int) (secs float64, points int, leases uint64, err error) {
	c := dist.New(dist.Config{LeaseTTL: 10 * time.Second, ShardSize: shard})
	mux := http.NewServeMux()
	mux.Handle("/v1/dist/", http.StripPrefix("/v1/dist", dist.Handler(c)))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	v, err := c.Submit(spec)
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &dist.Worker{
			Client:       dist.NewClient(srv.URL),
			Name:         fmt.Sprintf("bench-%d", i),
			PollInterval: 10 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(workerCtx)
		}()
	}
	final, err := c.Wait(ctx, v.ID)
	stopWorkers()
	wg.Wait()
	if err != nil {
		return 0, 0, 0, err
	}
	if final.State != dist.SweepCompleted {
		return 0, 0, 0, fmt.Errorf("sweep ended %s: %s", final.State, final.Error)
	}
	return time.Since(start).Seconds(), final.Total, c.Snapshot().LeasesGranted, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distbench:", err)
	os.Exit(1)
}
