// Command iprefetchsim runs one simulation of the paper's machine and
// prints its metrics.
//
// Usage:
//
//	iprefetchsim [-cores n] [-apps DB,TPC-W,...] [-prefetcher scheme]
//	             [-bypass] [-table entries] [-l1i bytes] [-l2 bytes]
//	             [-n instrs] [-warm instrs] [-seed n] [-breakdown]
//
// Examples:
//
//	# Paper's headline configuration: 4-way CMP, discontinuity
//	# prefetcher with the L2-bypass install policy.
//	iprefetchsim -cores 4 -apps DB -prefetcher discontinuity -bypass
//
//	# Multiprogrammed mix, no prefetching (baseline).
//	iprefetchsim -cores 4 -apps DB,TPC-W,jApp,Web
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
)

var (
	cores      = flag.Int("cores", 1, "number of cores (1 = private L2, >1 = shared)")
	apps       = flag.String("apps", "DB", "comma-separated workloads, cycled across cores")
	prefetcher = flag.String("prefetcher", "none", "prefetch scheme (none, nl-miss, nl-tagged, n4l-tagged, discontinuity, discont-2nl, ...)")
	bypass     = flag.Bool("bypass", false, "prefetches bypass the L2 until proven useful (paper Section 7)")
	table      = flag.Int("table", 0, "discontinuity table entries (0 = default 8192)")
	l1iBytes   = flag.Int("l1i", 0, "L1-I size in bytes (0 = 32KB default)")
	l2Bytes    = flag.Int("l2", 0, "L2 size in bytes (0 = 2MB default)")
	measure    = flag.Uint64("n", 5_000_000, "measured instructions per core")
	warm       = flag.Uint64("warm", 2_000_000, "warm-up instructions per core")
	seed       = flag.Uint64("seed", 1, "workload seed")
	breakdown  = flag.Bool("breakdown", false, "print the L1-I miss breakdown by category")
	perCore    = flag.Bool("percore", false, "print per-core metrics")
	cpiStack   = flag.Bool("cpistack", false, "print the CPI attribution stack")
	writebacks = flag.Bool("writebacks", false, "model dirty write-back traffic")
	jsonOut    = flag.Bool("json", false, "emit metrics as JSON")
)

func main() {
	flag.Parse()
	cfg := repro.MachineConfig{
		Cores:                     *cores,
		Workloads:                 strings.Split(*apps, ","),
		Prefetcher:                *prefetcher,
		BypassL2:                  *bypass,
		DiscontinuityTableEntries: *table,
		ModelWritebacks:           *writebacks,
		Seed:                      *seed,
	}
	if *l1iBytes > 0 {
		cfg.L1I = repro.CacheGeometry{SizeBytes: *l1iBytes, Assoc: 4, LineBytes: 64}
	}
	if *l2Bytes > 0 {
		cfg.L2 = repro.CacheGeometry{SizeBytes: *l2Bytes, Assoc: 4, LineBytes: 64}
	}
	m, err := repro.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m.Run(*warm)
	m.ResetStats()
	m.Run(*measure)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	printMetrics("chip", m.Metrics())
	if *perCore {
		for i := 0; i < *cores; i++ {
			cm, err := m.CoreMetrics(i)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printMetrics(fmt.Sprintf("core %d", i), cm)
		}
	}
}

func printMetrics(label string, g repro.Metrics) {
	fmt.Printf("[%s]\n", label)
	fmt.Printf("  instructions     %d\n", g.Instructions)
	fmt.Printf("  cycles           %d\n", g.Cycles)
	fmt.Printf("  IPC              %.4f\n", g.IPC)
	fmt.Printf("  L1-I miss/instr  %.4f%%\n", 100*g.L1IMissPerInstr)
	fmt.Printf("  L2-I miss/instr  %.4f%%\n", 100*g.L2IMissPerInstr)
	fmt.Printf("  L2-D miss/instr  %.4f%%\n", 100*g.L2DMissPerInstr)
	fmt.Printf("  bpred mispredict %.2f%%\n", 100*g.BranchMispredictRate)
	if *cpiStack {
		total := float64(g.Cycles) / float64(g.Instructions)
		rest := total - g.FetchStallCPI - g.DataStallCPI - g.BpredStallCPI
		fmt.Printf("  CPI stack        %.3f total = fetch %.3f + data %.3f + bpred %.3f + issue/other %.3f\n",
			total, g.FetchStallCPI, g.DataStallCPI, g.BpredStallCPI, rest)
	}
	if g.PrefetchIssued > 0 {
		fmt.Printf("  prefetch issued  %d\n", g.PrefetchIssued)
		fmt.Printf("  prefetch useful  %d (accuracy %.1f%%)\n", g.PrefetchUseful, 100*g.PrefetchAccuracy)
	}
	if *breakdown {
		fmt.Printf("  L1-I miss breakdown:\n")
		keys := make([]string, 0, len(g.MissBreakdown))
		for k := range g.MissBreakdown {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return g.MissBreakdown[keys[i]] > g.MissBreakdown[keys[j]] })
		for _, k := range keys {
			if g.MissBreakdown[k] > 0 {
				fmt.Printf("    %-16s %.1f%%\n", k, 100*g.MissBreakdown[k])
			}
		}
	}
}
