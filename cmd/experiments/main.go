// Command experiments regenerates the paper's evaluation: every figure
// (1-10) as a paper-style table, plus ablations beyond the paper.
//
// Usage:
//
//	experiments [-figure 1|2|...|10|a1..a10|all] [-n instrs] [-warm instrs]
//	            [-seed n] [-csv] [-md] [-o dir] [-v] [-parallel=false]
//	            [-timeout duration]
//
// Instruction budgets are per core. The defaults run every figure in a
// few minutes on a laptop; raise -n for tighter numbers. -timeout bounds
// the whole regeneration (in-flight simulations are cancelled when it
// expires), and Ctrl-C cancels the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

var (
	figure   = flag.String("figure", "all", "figure to reproduce: 1-10, a1-a10, or 'all'")
	measure  = flag.Uint64("n", 3_000_000, "measured instructions per core")
	warm     = flag.Uint64("warm", 1_500_000, "warm-up instructions per core")
	seed     = flag.Uint64("seed", 1, "workload seed")
	csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	mdOut    = flag.Bool("md", false, "emit markdown tables")
	outDir   = flag.String("o", "", "also write each table as a CSV file into this directory")
	verbose  = flag.Bool("v", false, "log each simulation run")
	parallel = flag.Bool("parallel", true, "pre-run simulations concurrently")
	timeout  = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
)

func main() {
	flag.Parse()
	e := sim.NewEngine(*warm, *measure, *seed)
	if *verbose {
		e.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	want := strings.Split(*figure, ",")
	matched := false
	start := time.Now()
	// Pre-warm the full matrix concurrently when regenerating everything;
	// single figures warm implicitly through memoisation.
	if *parallel && selected(want, "all") {
		if err := e.WarmAllContext(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, fig := range e.Figures() {
		if !selected(want, fig.ID) {
			continue
		}
		matched = true
		t0 := time.Now()
		tables, err := fig.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", fig.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			emit(t)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "figure %s done in %s\n", fig.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	for _, abl := range e.Ablations() {
		if !selected(want, abl.ID) {
			continue
		}
		matched = true
		tables, err := abl.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation %s: %v\n", abl.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			emit(t)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 1-10, a1-a10 or all)\n", *figure)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "total %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func selected(want []string, id string) bool {
	for _, w := range want {
		w = strings.TrimSpace(w)
		if w == "all" || w == id {
			return true
		}
	}
	return false
}

func emit(t *stats.Table) {
	if *outDir != "" {
		if err := writeCSVFile(t); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case *csvOut:
		t.CSV(os.Stdout)
	case *mdOut:
		t.Markdown(os.Stdout)
	default:
		t.Render(os.Stdout)
	}
	fmt.Println()
}

// writeCSVFile stores the table as <outDir>/<slug-of-title>.csv.
func writeCSVFile(t *stats.Table) error {
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	slug := make([]rune, 0, len(t.Title))
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			slug = append(slug, r)
		case r == ' ' || r == '-' || r == '_' || r == '(' || r == ')':
			if len(slug) > 0 && slug[len(slug)-1] != '-' {
				slug = append(slug, '-')
			}
		}
	}
	name := strings.Trim(string(slug), "-") + ".csv"
	f, err := os.Create(filepath.Join(*outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
