// Command experiments regenerates the paper's evaluation: every figure
// (1-10) as a paper-style table, plus ablations beyond the paper.
//
// Usage:
//
//	experiments [-figure 1|2|...|10|a1..a10|all] [-n instrs] [-warm instrs]
//	            [-seed n] [-csv] [-md] [-o dir] [-v] [-parallel=false]
//	            [-timeout duration]
//	experiments -sweep spec.json [-checkpoint dir] [-workers n] [-data dir]
//	            [-fork-warm] [...]
//	experiments -sweep spec.json -dist-coordinator http://host:8080
//
// Instruction budgets are per core. The defaults run every figure in a
// few minutes on a laptop; raise -n for tighter numbers. -timeout bounds
// the whole regeneration (in-flight simulations are cancelled when it
// expires), and Ctrl-C cancels the same way.
//
// -sweep switches to design-space-exploration mode: the spec file is a
// sweep.Spec (axes over schemes, workloads, cores, table sizes,
// prefetch depth, cache geometry) that expands into a point grid and
// runs on a bounded worker pool. With -checkpoint, completed points
// journal to <dir>/<sweep-id>, so an interrupted sweep rerun with the
// same flags resumes without recomputing anything. Spec budgets, when
// set, override -n/-warm/-seed.
//
// -data points at an iprefetchd-style data directory whose corpus/
// subdirectory resolves trace:<sha256> workload axis values, so a sweep
// can replay recorded containers locally (see EXPERIMENTS.md "Sweeps
// over recorded traces").
//
// -dist-coordinator offloads the sweep instead of simulating locally:
// the spec is submitted to a running iprefetchd daemon, remote
// iprefetchworker processes execute the grid, and this command polls
// progress, downloads the artifacts and renders the same tables as the
// local path. Interrupting the poll does not cancel the sweep — rerun
// with the same spec to reattach (sweep identity is content-derived).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cmp"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

var (
	figure    = flag.String("figure", "all", "figure to reproduce: 1-10, a1-a10, or 'all'")
	measure   = flag.Uint64("n", 3_000_000, "measured instructions per core")
	warm      = flag.Uint64("warm", 1_500_000, "warm-up instructions per core")
	seed      = flag.Uint64("seed", 1, "workload seed")
	csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	mdOut     = flag.Bool("md", false, "emit markdown tables")
	outDir    = flag.String("o", "", "also write each table as a CSV file into this directory")
	verbose   = flag.Bool("v", false, "log each simulation run")
	parallel  = flag.Bool("parallel", true, "pre-run simulations concurrently")
	timeout   = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	sweepFile = flag.String("sweep", "", "run a design-space sweep from this spec JSON file instead of figures")
	ckptDir   = flag.String("checkpoint", "", "journal sweep points under this directory for resumable runs")
	workers   = flag.Int("workers", 0, "concurrent simulations in sweep mode (0 = GOMAXPROCS)")
	distURL   = flag.String("dist-coordinator", "", "submit the -sweep spec to this iprefetchd URL and let remote workers run it")
	dataDir   = flag.String("data", "", "resolve trace:<id> workloads from the corpus under this data directory")
	forkWarm  = flag.Bool("fork-warm", false, "sweep mode: share warm-up across points via fork-and-diverge snapshots")
)

func main() {
	flag.Parse()

	if *dataDir != "" {
		store, err := corpus.Open(filepath.Join(*dataDir, "corpus"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cmp.RegisterTraceProvider(store.ReplaySource)
		traceStore = store
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sweepFile != "" {
		run := runSweep
		if *distURL != "" {
			run = runDistSweep
		}
		if err := run(ctx, *sweepFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "sweep interrupted; rerun with the same flags to resume from the checkpoint")
			}
			os.Exit(1)
		}
		return
	}

	e := sim.NewEngine(*warm, *measure, *seed)
	if *verbose {
		e.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	want := strings.Split(*figure, ",")
	matched := false
	start := time.Now()
	// Pre-warm the full matrix concurrently when regenerating everything;
	// single figures warm implicitly through memoisation.
	if *parallel && selected(want, "all") {
		if err := e.WarmAllContext(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, fig := range e.Figures() {
		if !selected(want, fig.ID) {
			continue
		}
		matched = true
		t0 := time.Now()
		tables, err := fig.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", fig.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			emit(t)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "figure %s done in %s\n", fig.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	for _, abl := range e.Ablations() {
		if !selected(want, abl.ID) {
			continue
		}
		matched = true
		tables, err := abl.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation %s: %v\n", abl.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			emit(t)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 1-10, a1-a10 or all)\n", *figure)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "total %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func selected(want []string, id string) bool {
	for _, w := range want {
		w = strings.TrimSpace(w)
		if w == "all" || w == id {
			return true
		}
	}
	return false
}

func emit(t *stats.Table) {
	if *outDir != "" {
		if err := writeCSVFile(t); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case *csvOut:
		t.CSV(os.Stdout)
	case *mdOut:
		t.Markdown(os.Stdout)
	default:
		t.Render(os.Stdout)
	}
	fmt.Println()
}

// runSweep executes the -sweep mode: load a sweep.Spec, run its grid
// on a checkpointing runner, print the result tables, and (with -o)
// drop results.json/results.csv/pareto.csv next to the figure CSVs.
func runSweep(ctx context.Context, path string) error {
	spec, err := loadSpec(path)
	if err != nil {
		return err
	}

	// Spec budgets, when present, win over the -n/-warm/-seed flags so a
	// spec file is self-contained and reproducible.
	w, n, s := *warm, *measure, *seed
	if spec.WarmInstrs != 0 {
		w = spec.WarmInstrs
	}
	if spec.MeasureInstrs != 0 {
		n = spec.MeasureInstrs
	}
	if spec.Seed != 0 {
		s = spec.Seed
	}
	e := sim.NewEngine(w, n, s)
	if *verbose {
		e.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	id := spec.ID(w, n, s)

	var journal *sweep.Journal
	if *ckptDir != "" {
		journal, err = sweep.OpenJournal(filepath.Join(*ckptDir, id))
		if err != nil {
			return err
		}
	}
	var doneCount int
	runner := &sweep.Runner{
		Engine:  e,
		Workers: *workers,
		Journal: journal,
	}
	if *verbose {
		runner.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		runner.OnPoint = func(res sweep.PointResult) {
			doneCount++
			how := "simulated"
			if res.Recovered {
				how = "recovered"
			}
			fmt.Fprintf(os.Stderr, "sweep point %d %s (%d done)\n", res.Point.Index, how, doneCount)
		}
	}

	start := time.Now()
	out, err := runner.Run(ctx, spec)
	if err != nil {
		return err
	}
	art := out.Artifact()
	fmt.Fprintf(os.Stderr, "sweep %s: %d points (%d recovered, %d simulated) in %s\n",
		id, len(out.Points), out.Recovered, out.Simulated, time.Since(start).Round(time.Millisecond))

	emit(art.Table())
	if pt := art.ParetoTable(); pt != nil {
		emit(pt)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		files := map[string][]byte{"results.csv": art.CSV()}
		if data, err := art.JSON(); err == nil {
			files["results.json"] = data
		}
		if p := art.ParetoCSV(); p != nil {
			files["pareto.csv"] = p
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(*outDir, name), data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// traceStore is the corpus opened via -data (nil without it); besides
// replaying trace:<id> workloads it backs corpus:select(...) axes.
var traceStore *corpus.Store

// loadSpec reads, normalizes and validates a sweep.Spec JSON file.
// corpus:select(...) workload axes expand against the -data corpus
// fingerprint index before validation, exactly as the daemon does at
// submission.
func loadSpec(path string) (sweep.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return sweep.Spec{}, err
	}
	var spec sweep.Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return sweep.Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	if *forkWarm {
		// Flag and spec field are OR'd: either opts the sweep into the
		// fork-and-diverge methodology (which is part of the sweep ID, so
		// fork and cold runs keep separate journals).
		spec.ForkWarm = true
	}
	var selectIDs func(string) ([]string, error)
	if traceStore != nil {
		selectIDs = traceStore.Select
	}
	if err := spec.Normalize(selectIDs); err != nil {
		return sweep.Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return sweep.Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// runDistSweep executes the -dist-coordinator mode: the spec is
// submitted to a remote iprefetchd coordinator, its workers run the
// grid, and this process only polls progress and renders the artifacts
// the coordinator built.
func runDistSweep(ctx context.Context, path string) error {
	spec, err := loadSpec(path)
	if err != nil {
		return err
	}
	client := dist.NewClient(*distURL)
	v, err := client.SubmitSweep(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %d points on %s (%d recovered from its journal)\n",
		v.ID, v.Total, *distURL, v.Recovered)

	start := time.Now()
	for v.State == dist.SweepRunning {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
		}
		if v, err = client.Sweep(ctx, v.ID); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "sweep %s: %d/%d points (%d pending, %d leased)\n",
				v.ID, v.Completed, v.Total, v.Pending, v.Leased)
		}
	}
	if v.State != dist.SweepCompleted {
		return fmt.Errorf("sweep %s %s: %s", v.ID, v.State, v.Error)
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %d points done in %s (%d recovered)\n",
		v.ID, v.Completed, time.Since(start).Round(time.Millisecond), v.Recovered)

	data, err := client.Artifact(ctx, v.ID, "results.json")
	if err != nil {
		return err
	}
	var art sweep.Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return fmt.Errorf("decode results.json: %w", err)
	}
	emit(art.Table())
	if pt := art.ParetoTable(); pt != nil {
		emit(pt)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, name := range v.Artifacts {
			data, err := client.Artifact(ctx, v.ID, name)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*outDir, name), data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSVFile stores the table as <outDir>/<slug-of-title>.csv.
func writeCSVFile(t *stats.Table) error {
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	slug := make([]rune, 0, len(t.Title))
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			slug = append(slug, r)
		case r == ' ' || r == '-' || r == '_' || r == '(' || r == ')':
			if len(slug) > 0 && slug[len(slug)-1] != '-' {
				slug = append(slug, '-')
			}
		}
	}
	name := strings.Trim(string(slug), "-") + ".csv"
	f, err := os.Create(filepath.Join(*outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
