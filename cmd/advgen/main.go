// Command advgen runs the adversarial workload foundry from the
// command line: it hill-climbs the synthetic Profile space against a
// named prefetch scheme, reports the search trajectory, and writes the
// resulting spec (profile + search metadata) as JSON. The same search
// is reachable inside any sweep via the workload name the spec carries
// ("adv:<scheme>@<seed>[x<iters>]"), so the written file is
// documentation of a reproducible point, not the only way to reach it.
//
// Usage:
//
//	advgen -scheme discontinuity [-seed 1] [-iters 24]
//	       [-assert-gain 1.2] [-o docs/specs/adversarial_discontinuity.json]
//
// With -assert-gain g > 0, advgen also evaluates the paper's four
// workloads under the scheme and exits nonzero unless the search
// product's L1-I MPKI is at least g times the worst of them — the CI
// smoke mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/foundry"
)

// specFile is the on-disk document: the search result plus the baseline
// it was judged against. The embedded profile is a plain
// workload.Profile, loadable with workload.ProfileFromJSON after
// extracting the "profile" member.
type specFile struct {
	// Workload is the sweep-axis name that reproduces this profile
	// from scratch on any machine.
	Workload string `json:"workload"`
	foundry.SearchResult
	// BaselineWorkload/BaselineMPKI are the worst paper workload under
	// the scheme (present only when -assert-gain ran the comparison).
	BaselineWorkload string  `json:"baseline_workload,omitempty"`
	BaselineMPKI     float64 `json:"baseline_mpki,omitempty"`
	Gain             float64 `json:"gain,omitempty"`
}

func main() {
	var (
		scheme     = flag.String("scheme", "discontinuity", "prefetch scheme to search against")
		seed       = flag.Uint64("seed", 1, "search seed")
		iters      = flag.Int("iters", foundry.DefaultIters, "hill-climb iterations")
		assertGain = flag.Float64("assert-gain", 0, "fail unless best MPKI >= gain x worst paper workload (0 disables)")
		out        = flag.String("o", "", "write the spec JSON here (default stdout)")
	)
	flag.Parse()

	spec := foundry.Spec{Scheme: *scheme, Seed: *seed, Iters: *iters}
	res, err := foundry.Search(spec)
	if err != nil {
		fatal(err)
	}
	doc := specFile{Workload: res.Spec.Name(), SearchResult: res}
	fmt.Fprintf(os.Stderr, "advgen: %s  start %.2f -> best %.2f L1-I MPKI over %d evals\n",
		doc.Workload, res.StartMPKI, res.BestMPKI, res.Evals)

	if *assertGain > 0 {
		name, worst, err := foundry.WorstPaperMPKI(*scheme)
		if err != nil {
			fatal(err)
		}
		doc.BaselineWorkload = name
		doc.BaselineMPKI = worst
		if worst > 0 {
			doc.Gain = res.BestMPKI / worst
		}
		fmt.Fprintf(os.Stderr, "advgen: worst paper workload %s = %.2f MPKI, gain %.2fx (need %.2fx)\n",
			name, worst, doc.Gain, *assertGain)
		if doc.Gain < *assertGain {
			fatal(fmt.Errorf("gain %.3f below required %.3f", doc.Gain, *assertGain))
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "advgen: wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advgen:", err)
	os.Exit(1)
}
