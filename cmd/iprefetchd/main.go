// Command iprefetchd serves the simulation engine as a long-lived HTTP
// daemon: clients POST simulation specs (machine config + workload +
// prefetcher + budgets) to a bounded job queue, poll job status, and
// fetch paper figures. Identical in-flight specs share one simulation,
// and completed results persist in a content-addressed store so a
// restarted daemon answers repeated specs from disk.
//
// The daemon also runs design-space sweeps (internal/sweep): POST a
// sweep.Spec with axes over schemes, workloads, cores, table sizes,
// prefetch depth and cache geometry; the grid shards across the worker
// pool and exports results.json / results.csv / pareto.csv artifacts.
// With -data set, every finished point checkpoints to
// <data>/sweeps/<id>, and because sweep ids are content-derived, a
// sweep interrupted by a daemon restart resumes from disk when the
// same spec is POSTed again — zero points recomputed.
//
// Endpoints:
//
// The daemon embeds a distributed-sweep coordinator (internal/dist)
// under /v1/dist: remote iprefetchworker processes register, pull grid
// shards as heartbeat-renewed leases, and stream completed points back;
// expired leases reinject automatically and point submission is
// idempotent, so worker crashes cost retries, never correctness.
//
// Endpoints:
//
//	POST /v1/jobs         submit a spec (?wait=1 blocks until done)
//	GET  /v1/jobs         list jobs
//	GET  /v1/jobs/{id}    job status + result
//	POST /v1/sweeps       launch a design-space sweep (?wait=1 blocks)
//	GET  /v1/sweeps       list sweeps
//	GET  /v1/sweeps/{id}  sweep progress (completed/total points)
//	GET  /v1/sweeps/{id}/artifacts/{name}  download a sweep artifact
//	GET  /v1/figures/{id} run a paper figure ("1".."10") or ablation ("a1".."a10")
//	POST /v1/corpus       upload a v2 trace container (needs -data; size-capped)
//	GET  /v1/corpus       list trace-corpus entries (?select=<expr> filters by
//	                      fingerprint, e.g. select=footprint>4096,cti>0.1)
//	GET  /v1/corpus/{id}[/manifest]      download a container / its manifest
//	GET  /v1/corpus/{id}/chunks/{chunk}  one raw CAS chunk (federation unit)
//	POST /v1/dist/workers                submit a worker registration
//	POST /v1/dist/sweeps                 launch a distributed sweep
//	GET  /v1/dist/sweeps[/{id}]          distributed sweep progress
//	GET  /v1/dist/sweeps/{id}/artifacts/{name}  download artifacts
//	POST /v1/dist/leases[/{id}/renew|complete|fail]  lease lifecycle
//	POST /v1/dist/sweeps/{id}/points     deliver a completed point
//	GET  /v1/jobs/{id}/events            SSE progress stream for a job
//	GET  /v1/sweeps/{id}/events          SSE progress stream for a sweep
//	GET  /healthz         liveness + counters + replica role
//	GET  /metrics         Prometheus text exposition (service + dist + ctlplane + runtime)
//
// Control plane at scale: -replica-id (with a shared -data directory
// on every replica) joins the replicated-coordinator protocol —
// replicas contend for a file lease, the owner serves writes (and
// -advertise tells followers where to 307-redirect them), any replica
// serves reads, and a new owner adopts sweeps its predecessor left
// unfinished. -quotas points at a JSON admission policy (per-client
// token buckets); SIGHUP re-reads it without a restart.
//
// Corpus at scale: -peers lists other daemons' base URLs; a sweep
// pinned to a trace:<id> this daemon's store lacks pulls the manifest
// and only the missing chunks from the first peer that has the entry
// (shared chunks are never re-transferred). -gc enables a periodic
// mark-and-sweep over the chunk CAS — live manifests, in-flight
// ingests, and every trace id named by a sweep journal under -data
// are roots — with -gc-grace protecting recent writes and
// -gc-dry-run reporting instead of deleting. Sweeps may also select
// workloads by fingerprint: a "corpus:select(footprint>4096,cti>0.1)"
// workload axis expands to the matching trace:<id> set at submission.
//
// Example:
//
//	iprefetchd -addr :8080 -data ./results &
//	curl -s localhost:8080/v1/jobs?wait=1 -d '{"workload":"DB","cores":4,"scheme":"discontinuity","bypass":true}'
//	curl -s localhost:8080/v1/sweeps -d '{"schemes":["discontinuity","nl-miss"],"workloads":["DB","TPC-W"],"table_entries":[512,1024,2048]}'
//	iprefetchworker -coordinator http://localhost:8080   # as many as you like
//
// SIGINT/SIGTERM drain gracefully: open SSE streams receive a final
// `shutdown` event and close, the queue stops accepting jobs, running
// simulations finish (up to -drain), then the process exits.
// -pprof-addr exposes net/http/pprof on a separate, opt-in listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the opt-in -pprof-addr listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

// version is stamped by the build (go build -ldflags "-X main.version=...")
// and exported as iprefetchd_build_info on /metrics.
var version = "dev"

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "max queued jobs before submissions get 503")
		dataDir    = flag.String("data", "", "result store directory (empty = no persistence)")
		warm       = flag.Uint64("warm", 1_500_000, "default warm-up instructions per core")
		measure    = flag.Uint64("n", 3_000_000, "default measured instructions per core")
		seed       = flag.Uint64("seed", 1, "default workload seed")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown grace period before cancelling running jobs")
		maxSweeps  = flag.Int("max-sweeps", 8, "max concurrently running local sweeps before submissions get 503")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "distributed-sweep lease lifetime between worker heartbeats")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		corpusCap  = flag.Int64("corpus-max-upload", 0, "max trace-container upload size in bytes (0 = 64 MiB default)")
		replicaID  = flag.String("replica-id", "", "join the replicated control plane under this replica name (needs shared -data)")
		advertise  = flag.String("advertise", "", "base URL other replicas redirect writes to when this replica owns the lease (e.g. http://host:8080)")
		replicaTTL = flag.Duration("replica-ttl", 10*time.Second, "control-plane lease lifetime; a dead owner is superseded after this long")
		quotas     = flag.String("quotas", "", "JSON admission-quota policy file (per-client token buckets); SIGHUP re-reads it")
		heartbeat  = flag.Duration("sse-heartbeat", 15*time.Second, "SSE keepalive interval on event streams")
		peers      = flag.String("peers", "", "comma-separated peer daemon base URLs for corpus chunk federation (needs -data)")
		gcEvery    = flag.Duration("gc", 0, "corpus GC interval (0 = disabled; needs -data)")
		gcGrace    = flag.Duration("gc-grace", 0, "corpus GC grace window for recent chunks (0 = 1h default, negative = none)")
		gcDryRun   = flag.Bool("gc-dry-run", false, "corpus GC reports what it would delete without deleting")
	)
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}

	logger := log.New(os.Stderr, "iprefetchd: ", log.LstdFlags)
	svc, err := service.New(service.Config{
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		ResultDir:            *dataDir,
		DefaultWarmInstrs:    *warm,
		DefaultMeasureInstrs: *measure,
		Seed:                 *seed,
		DefaultTimeout:       *jobTimeout,
		MaxActiveSweeps:      *maxSweeps,
		DistLeaseTTL:         *leaseTTL,
		MaxCorpusUploadBytes: *corpusCap,
		CorpusPeers:          peerList,
		CorpusGCInterval:     *gcEvery,
		CorpusGCGrace:        *gcGrace,
		CorpusGCDryRun:       *gcDryRun,
		SSEHeartbeat:         *heartbeat,
		Version:              version,
		Logf:                 logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	if *quotas != "" {
		if err := svc.ReloadQuotaFile(*quotas); err != nil {
			logger.Fatal(err)
		}
		// SIGHUP hot-reloads the admission policy; a broken file logs
		// and leaves the active policy untouched.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := svc.ReloadQuotaFile(*quotas); err != nil {
					logger.Printf("quota reload: %v", err)
				}
			}
		}()
	}
	if *replicaID != "" {
		url := *advertise
		if url == "" {
			url = "http://" + *addr
		}
		if err := svc.EnableReplication(*replicaID, url, *replicaTTL); err != nil {
			logger.Fatal(err)
		}
	}

	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: service.Handler(svc)}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d queue=%d data=%q)",
			*addr, svc.Workers(), *queueDepth, *dataDir)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("shutdown signal received, draining (max %s)", *drain)
	case err := <-errc:
		logger.Fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Close SSE streams (each gets a final `shutdown` event) before the
	// HTTP server shutdown — otherwise open streams would hold
	// srv.Shutdown until the drain deadline.
	svc.DrainStreams()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Printf("queue drain: %v", err)
	}
	snap := svc.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr, "iprefetchd: done (completed=%d failed=%d canceled=%d)\n",
		snap.Completed, snap.Failed, snap.Canceled)
}
