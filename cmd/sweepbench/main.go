// Command sweepbench measures design-space-sweep throughput and writes
// a BENCH_sweep.json snapshot so successive changes can track the
// trend. It runs a representative three-axis sweep twice on one
// engine: the cold pass simulates every grid point, the warm pass
// resolves the identical grid through the engine's memoisation layer.
// The report carries points/sec for both passes plus the memo-hit
// ratio across the whole run.
//
// Usage:
//
//	sweepbench [-n instrs] [-warm instrs] [-seed n] [-workers n]
//	           [-o BENCH_sweep.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// report is the BENCH_sweep.json schema.
type report struct {
	Name          string    `json:"name"`
	Timestamp     time.Time `json:"timestamp"`
	GoMaxProcs    int       `json:"gomaxprocs"`
	Workers       int       `json:"workers"`
	WarmInstrs    uint64    `json:"warm_instrs"`
	MeasureInstrs uint64    `json:"measure_instrs"`
	Seed          uint64    `json:"seed"`

	GridPoints       int     `json:"grid_points"`
	ColdSeconds      float64 `json:"cold_seconds"`
	ColdPointsPerSec float64 `json:"cold_points_per_sec"`
	WarmSeconds      float64 `json:"warm_seconds"`
	WarmPointsPerSec float64 `json:"warm_points_per_sec"`

	Simulations  uint64  `json:"simulations"`
	MemoHits     uint64  `json:"memo_hits"`
	MemoHitRatio float64 `json:"memo_hit_ratio"`
}

func main() {
	var (
		measure = flag.Uint64("n", 200_000, "measured instructions per core per point")
		warm    = flag.Uint64("warm", 100_000, "warm-up instructions per core per point")
		seed    = flag.Uint64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		out     = flag.String("o", "BENCH_sweep.json", "output report path")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A representative three-axis grid: two schemes, two workloads,
	// three table sizes (the table axis collapses for nl-miss, plus
	// implicit baselines — 10 points).
	spec := sweep.Spec{
		Name:         "bench",
		Schemes:      []string{"discontinuity", "nl-miss"},
		Workloads:    []string{"DB", "TPC-W"},
		Cores:        []int{1},
		TableEntries: []int{512, 1024, 2048},
	}

	e := sim.NewEngine(*warm, *measure, *seed)
	runner := &sweep.Runner{Engine: e, Workers: *workers}

	cold := time.Now()
	outc, err := runner.Run(ctx, spec)
	if err != nil {
		fatal(err)
	}
	coldSecs := time.Since(cold).Seconds()

	warmStart := time.Now()
	if _, err := runner.Run(ctx, spec); err != nil {
		fatal(err)
	}
	warmSecs := time.Since(warmStart).Seconds()

	c := e.Counters()
	points := len(outc.Points)
	rep := report{
		Name:          "sweep",
		Timestamp:     time.Now().UTC(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workers:       *workers,
		WarmInstrs:    *warm,
		MeasureInstrs: *measure,
		Seed:          *seed,
		GridPoints:    points,
		ColdSeconds:   coldSecs,
		WarmSeconds:   warmSecs,
		Simulations:   c.Simulations,
		MemoHits:      c.MemoHits,
	}
	if coldSecs > 0 {
		rep.ColdPointsPerSec = float64(points) / coldSecs
	}
	if warmSecs > 0 {
		rep.WarmPointsPerSec = float64(points) / warmSecs
	}
	if total := c.Simulations + c.MemoHits; total > 0 {
		rep.MemoHitRatio = float64(c.MemoHits) / float64(total)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepbench: %d points, cold %.1f pts/s, warm %.1f pts/s, memo-hit %.2f -> %s\n",
		points, rep.ColdPointsPerSec, rep.WarmPointsPerSec, rep.MemoHitRatio, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
