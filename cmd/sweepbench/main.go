// Command sweepbench measures design-space-sweep throughput and writes
// a BENCH_sweep.json snapshot so successive changes can track the
// trend. It runs a representative three-axis sweep twice on one
// engine: the cold pass simulates every grid point, the warm pass
// resolves the identical grid through the engine's memoisation layer.
// A third comparison runs a dense same-workload grid cold and then
// fork-warm (shared warm-up snapshot, see sim.Engine.RunBatchContext)
// on fresh engines, under warm-dominated budgets where the
// fork-and-diverge methodology pays off. The report carries points/sec
// for every pass plus the memo-hit ratio and the fork speedup.
//
// Usage:
//
//	sweepbench [-n instrs] [-warm instrs] [-seed n] [-workers n]
//	           [-fork-n instrs] [-fork-warm instrs] [-o BENCH_sweep.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// report is the BENCH_sweep.json schema.
type report struct {
	Name          string    `json:"name"`
	Timestamp     time.Time `json:"timestamp"`
	GoMaxProcs    int       `json:"gomaxprocs"`
	Workers       int       `json:"workers"`
	WarmInstrs    uint64    `json:"warm_instrs"`
	MeasureInstrs uint64    `json:"measure_instrs"`
	Seed          uint64    `json:"seed"`

	GridPoints       int     `json:"grid_points"`
	ColdSeconds      float64 `json:"cold_seconds"`
	ColdPointsPerSec float64 `json:"cold_points_per_sec"`
	WarmSeconds      float64 `json:"warm_seconds"`
	WarmPointsPerSec float64 `json:"warm_points_per_sec"`

	Simulations  uint64  `json:"simulations"`
	MemoHits     uint64  `json:"memo_hits"`
	MemoHitRatio float64 `json:"memo_hit_ratio"`

	// Dense same-workload grid, cold vs fork-warm on fresh engines.
	ForkWarmInstrs     uint64  `json:"fork_warm_instrs"`
	ForkMeasureInstrs  uint64  `json:"fork_measure_instrs"`
	DenseGridPoints    int     `json:"dense_grid_points"`
	DenseColdSeconds   float64 `json:"dense_cold_seconds"`
	DenseColdPerSec    float64 `json:"dense_cold_points_per_sec"`
	ForkedSeconds      float64 `json:"forked_seconds"`
	ForkedPointsPerSec float64 `json:"forked_points_per_sec"`
	ForkSpeedup        float64 `json:"fork_speedup"`
}

func main() {
	var (
		measure  = flag.Uint64("n", 200_000, "measured instructions per core per point")
		warm     = flag.Uint64("warm", 100_000, "warm-up instructions per core per point")
		seed     = flag.Uint64("seed", 1, "workload seed")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		forkN    = flag.Uint64("fork-n", 60_000, "dense-grid comparison: measured instructions per point")
		forkWarm = flag.Uint64("fork-warm", 600_000, "dense-grid comparison: warm-up instructions per point")
		out      = flag.String("o", "BENCH_sweep.json", "output report path")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A representative three-axis grid: two schemes, two workloads,
	// three table sizes (the table axis collapses for nl-miss, plus
	// implicit baselines — 10 points).
	spec := sweep.Spec{
		Name:         "bench",
		Schemes:      []string{"discontinuity", "nl-miss"},
		Workloads:    []string{"DB", "TPC-W"},
		Cores:        []int{1},
		TableEntries: []int{512, 1024, 2048},
	}

	e := sim.NewEngine(*warm, *measure, *seed)
	runner := &sweep.Runner{Engine: e, Workers: *workers}

	cold := time.Now()
	outc, err := runner.Run(ctx, spec)
	if err != nil {
		fatal(err)
	}
	coldSecs := time.Since(cold).Seconds()

	warmStart := time.Now()
	if _, err := runner.Run(ctx, spec); err != nil {
		fatal(err)
	}
	warmSecs := time.Since(warmStart).Seconds()

	// Dense same-workload grid: one workload, one scheme, table-size ×
	// prefetch-ahead cross (12 points + baseline). Bypass is pinned
	// off so the implicit baseline shares the grid's warm key and every
	// point shares one scheme-neutral warm phase — fork-warm runs the
	// warm-up once where the cold schedule repeats it per point.
	// Warm-dominated budgets (the regime dense grids actually run in)
	// make the shared prefix the bulk of the work. Fresh engines per
	// pass keep the memoisation layer out of the comparison.
	dense := sweep.Spec{
		Name:          "bench-dense",
		Schemes:       []string{"discontinuity"},
		Workloads:     []string{"DB"},
		Cores:         []int{1},
		Bypass:        []bool{false},
		TableEntries:  []int{256, 512, 1024, 2048},
		PrefetchAhead: []int{0, 2, 4},
	}
	denseCold := time.Now()
	denseOut, err := (&sweep.Runner{Engine: sim.NewEngine(*forkWarm, *forkN, *seed), Workers: *workers}).Run(ctx, dense)
	if err != nil {
		fatal(err)
	}
	denseColdSecs := time.Since(denseCold).Seconds()

	dense.ForkWarm = true
	forkStart := time.Now()
	forkOut, err := (&sweep.Runner{Engine: sim.NewEngine(*forkWarm, *forkN, *seed), Workers: *workers}).Run(ctx, dense)
	if err != nil {
		fatal(err)
	}
	forkSecs := time.Since(forkStart).Seconds()
	if len(forkOut.Points) != len(denseOut.Points) {
		fatal(fmt.Errorf("sweepbench: dense grid size mismatch: cold %d vs forked %d", len(denseOut.Points), len(forkOut.Points)))
	}

	c := e.Counters()
	points := len(outc.Points)
	rep := report{
		Name:          "sweep",
		Timestamp:     time.Now().UTC(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workers:       *workers,
		WarmInstrs:    *warm,
		MeasureInstrs: *measure,
		Seed:          *seed,
		GridPoints:    points,
		ColdSeconds:   coldSecs,
		WarmSeconds:   warmSecs,
		Simulations:   c.Simulations,
		MemoHits:      c.MemoHits,

		ForkWarmInstrs:    *forkWarm,
		ForkMeasureInstrs: *forkN,
		DenseGridPoints:   len(denseOut.Points),
		DenseColdSeconds:  denseColdSecs,
		ForkedSeconds:     forkSecs,
	}
	if coldSecs > 0 {
		rep.ColdPointsPerSec = float64(points) / coldSecs
	}
	if warmSecs > 0 {
		rep.WarmPointsPerSec = float64(points) / warmSecs
	}
	if total := c.Simulations + c.MemoHits; total > 0 {
		rep.MemoHitRatio = float64(c.MemoHits) / float64(total)
	}
	if denseColdSecs > 0 {
		rep.DenseColdPerSec = float64(rep.DenseGridPoints) / denseColdSecs
	}
	if forkSecs > 0 {
		rep.ForkedPointsPerSec = float64(rep.DenseGridPoints) / forkSecs
		rep.ForkSpeedup = denseColdSecs / forkSecs
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepbench: %d points, cold %.1f pts/s, warm %.1f pts/s, memo-hit %.2f -> %s\n",
		points, rep.ColdPointsPerSec, rep.WarmPointsPerSec, rep.MemoHitRatio, *out)
	fmt.Fprintf(os.Stderr, "sweepbench: dense %d points, cold %.1f pts/s, forked %.1f pts/s (%.1fx)\n",
		rep.DenseGridPoints, rep.DenseColdPerSec, rep.ForkedPointsPerSec, rep.ForkSpeedup)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
