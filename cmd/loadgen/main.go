// Command loadgen drives a closed-loop load test against an iprefetchd
// control plane and writes a latency/throughput report. Each of
// -clients concurrent clients loops: submit a job (POST /v1/jobs?wait=1)
// or, with probability -sweep-frac, a sweep; a -sse-frac fraction of
// sweep submitters also hold the sweep's SSE event stream open until it
// completes. Specs are drawn from a bounded pool so the simulator's
// memoisation absorbs the compute and the run measures the control
// plane (queueing, admission, streaming), not the simulator.
//
// Point it at a running daemon with -url, or pass -self to spin up an
// in-process daemon on a loopback port with tiny simulation budgets —
// the mode `make bench-service` uses, so the benchmark needs no
// externally managed process. With -self, -quota-per-sec > 0 enables
// admission control so the run also exercises 429 shedding.
//
// 429 responses are counted as shed work (the admission layer doing its
// job), honoured with their Retry-After, and excluded from latency
// percentiles; 503s count as saturation. The report lands on stdout
// and, with -out, as JSON (BENCH_service.json in CI).
//
// Example:
//
//	loadgen -self -clients 1024 -duration 30s -out BENCH_service.json
//	loadgen -url http://localhost:8080 -clients 256 -duration 1m
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/service"
)

func main() {
	var (
		url         = flag.String("url", "", "daemon base URL (empty with -self)")
		self        = flag.Bool("self", false, "spin up an in-process daemon on a loopback port")
		clients     = flag.Int("clients", 64, "closed-loop client concurrency")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		ramp        = flag.Duration("ramp", 0, "client start ramp window (0 = duration/5)")
		sweepFrac   = flag.Float64("sweep-frac", 0.05, "fraction of operations that submit sweeps")
		sseFrac     = flag.Float64("sse-frac", 0.5, "fraction of sweep submitters that hold an SSE stream")
		specPool    = flag.Int("spec-pool", 32, "distinct job specs in play")
		apiKeyEvery = flag.Int("api-key-every", 4, "every n-th client sends an X-API-Key (0 = none)")
		seed        = flag.Int64("seed", 1, "operation-mix seed")
		out         = flag.String("out", "", "write the JSON report here (empty = stdout only)")
		quotaPerSec = flag.Float64("quota-per-sec", 0, "with -self: default admission quota in req/s (0 = unlimited)")
		selfWorkers = flag.Int("self-workers", 0, "with -self: daemon worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "loadgen: ", log.LstdFlags)

	if (*url == "") == !*self {
		logger.Fatal("exactly one of -url or -self is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *url
	var shutdown func()
	if *self {
		var err error
		base, shutdown, err = startSelfDaemon(logger, *selfWorkers, *quotaPerSec)
		if err != nil {
			logger.Fatal(err)
		}
		defer shutdown()
		logger.Printf("in-process daemon at %s", base)
	}

	cfg := ctlplane.LoadConfig{
		BaseURL:       base,
		Clients:       *clients,
		Duration:      *duration,
		Ramp:          *ramp,
		SweepFraction: *sweepFrac,
		SSEFraction:   *sseFrac,
		SpecPool:      *specPool,
		APIKeyEvery:   *apiKeyEvery,
		Seed:          *seed,
	}
	logger.Printf("running: clients=%d duration=%s sweep-frac=%.2f sse-frac=%.2f against %s",
		*clients, *duration, *sweepFrac, *sseFrac, base)
	rep, err := ctlplane.RunLoad(ctx, cfg)
	if err != nil {
		logger.Fatal(err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("report written to %s", *out)
	}
	logger.Printf("jobs=%d (p50=%.1fms p99=%.1fms) sweeps=%d (%.1f/s) shed=%d busy=%d sse=%d streams/%d events",
		rep.Jobs.Count, rep.Jobs.P50MS, rep.Jobs.P99MS,
		rep.Sweeps.Count, rep.SweepsPerS, rep.Shed429, rep.Busy503,
		rep.SSEStreams, rep.SSEEvents)
}

// startSelfDaemon boots an in-process iprefetchd on 127.0.0.1:0 with
// tiny simulation budgets, returning its base URL and a shutdown func.
func startSelfDaemon(logger *log.Logger, workers int, quotaPerSec float64) (string, func(), error) {
	svc, err := service.New(service.Config{
		Workers:              workers,
		QueueDepth:           256,
		DefaultWarmInstrs:    20_000,
		DefaultMeasureInstrs: 50_000,
		Seed:                 1,
		DefaultTimeout:       time.Minute,
		MaxActiveSweeps:      64,
		Version:              "loadgen-self",
		Logf:                 func(string, ...any) {}, // keep the report readable
	})
	if err != nil {
		return "", nil, err
	}
	if quotaPerSec > 0 {
		svc.EnableAdmission(ctlplane.QuotaConfig{
			Default: ctlplane.Quota{PerSec: quotaPerSec},
			Clients: map[string]ctlplane.Quota{"bench-keyed": {PerSec: -1}},
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: service.Handler(svc)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Printf("self daemon: %v", err)
		}
	}()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.DrainStreams()
		srv.Shutdown(ctx)
		svc.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
