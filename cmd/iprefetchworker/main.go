// Command iprefetchworker is a remote sweep worker: it registers with
// an iprefetchd coordinator, pulls shard leases of design-space grid
// points over HTTP, simulates them on a local memoising engine, and
// streams every completed point back while heartbeating its lease.
// Run as many workers as there are machines (or cores to spare); the
// coordinator shards one sweep across all of them, and a worker that
// dies mid-shard simply loses its lease — the points reinject and
// another worker finishes them, with idempotent submission keeping
// every point counted exactly once.
//
// Usage:
//
//	iprefetchworker -coordinator http://host:8080 [-name id]
//	                [-concurrency n] [-poll interval] [-trace-cache dir]
//	                [-pprof-addr addr] [-v]
//
// -trace-cache names a local directory used as a corpus cache: leases
// whose points replay trace:<id> workloads fetch the container from
// the coordinator (/v1/corpus/{id}) on first use, verify the bytes
// hash to the id, and serve every later lease from disk.
//
// The worker runs until SIGINT/SIGTERM (in-flight simulations are
// cancelled; their points reinject at the coordinator) or until the
// coordinator quarantines it after repeated failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the opt-in -pprof-addr listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/sweep"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL(s), comma-separated for replicated control planes (e.g. http://a:8080,http://b:8080); required")
		name        = flag.String("name", "", "worker name in coordinator logs/metrics (default host-pid)")
		concurrency = flag.Int("concurrency", 1, "points simulated in parallel within one lease")
		poll        = flag.Duration("poll", 500*time.Millisecond, "idle wait between lease polls")
		traceCache  = flag.String("trace-cache", "", "local corpus cache directory for trace:<id> workloads (empty = no trace replay)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		verbose     = flag.Bool("v", false, "log lease and point activity")
	)
	flag.Parse()
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "iprefetchworker: -coordinator is required")
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	logger := log.New(os.Stderr, "iprefetchworker: ", log.LstdFlags)
	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	// A comma-separated -coordinator list names every replica of a
	// replicated control plane: the client retries against the next
	// replica when the current one is unreachable, so a coordinator
	// failover is invisible to the worker.
	urls := strings.Split(*coordinator, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	w := &dist.Worker{
		Client:       dist.NewClient(urls[0], urls[1:]...),
		Name:         *name,
		Concurrency:  *concurrency,
		PollInterval: *poll,
	}
	if *traceCache != "" {
		store, err := corpus.Open(*traceCache)
		if err != nil {
			logger.Fatal(err)
		}
		w.Corpus = store
	}
	if *verbose {
		w.Logf = logger.Printf
		w.OnPoint = func(res sweep.PointResult) {
			logger.Printf("point %d done: ipc=%.4f (%.0fms)", res.Point.Index, res.IPC, float64(res.ElapsedMS))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("worker %s polling %s (concurrency=%d)", *name, *coordinator, *concurrency)
	err := w.Run(ctx)
	c := w.EngineCounters()
	logger.Printf("done (simulated=%d memo=%d): %v", c.Simulations, c.MemoHits, err)
	if err != nil && !errors.Is(err, context.Canceled) {
		os.Exit(1)
	}
}
