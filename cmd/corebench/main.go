// Command corebench measures the per-point simulation hot path —
// cmp.System stepping cores through the fetch/prefetch front-end — and
// writes a BENCH_core.json snapshot so successive changes can track the
// trend. Unlike sweepbench (which measures sweep orchestration and
// memoisation), corebench times the core loop itself: simulated
// instructions per wall-clock second for the no-prefetch baseline, the
// sequential n4l-tagged scheme, and the paper's discontinuity
// prefetcher, each on a single core and on the 4-way CMP.
//
// Usage:
//
//	corebench [-n instrs] [-warm instrs] [-seed n] [-workload name]
//	          [-schemes a,b,c] [-cores 1,4]
//	          [-cpuprofile prof.out] [-o BENCH_core.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cmp"
)

// point is one (scheme, cores) measurement.
type point struct {
	Scheme        string  `json:"scheme"`
	Cores         int     `json:"cores"`
	Instructions  uint64  `json:"instructions"`
	Seconds       float64 `json:"seconds"`
	InstrsPerSec  float64 `json:"instrs_per_sec"`
	AggregateIPC  float64 `json:"aggregate_ipc"`
	L1IMissPer1k  float64 `json:"l1i_misses_per_1k_instrs"`
	PrefetchesPer float64 `json:"prefetches_issued_per_1k_instrs"`
}

// report is the BENCH_core.json schema.
type report struct {
	Name          string    `json:"name"`
	Timestamp     time.Time `json:"timestamp"`
	GoMaxProcs    int       `json:"gomaxprocs"`
	Workload      string    `json:"workload"`
	WarmInstrs    uint64    `json:"warm_instrs"`
	MeasureInstrs uint64    `json:"measure_instrs"`
	Seed          uint64    `json:"seed"`
	Points        []point   `json:"points"`
}

func main() {
	var (
		measure  = flag.Uint64("n", 2_000_000, "measured instructions per core")
		warm     = flag.Uint64("warm", 200_000, "warm-up instructions per core")
		seed     = flag.Uint64("seed", 1, "workload seed")
		wl       = flag.String("workload", "DB", "workload name (homogeneous)")
		schemes  = flag.String("schemes", "none,n4l-tagged,discontinuity", "comma-separated schemes to measure")
		coreSet  = flag.String("cores", "1,4", "comma-separated core counts to measure")
		profPath = flag.String("cpuprofile", "", "write a CPU profile of the measured runs")
		out      = flag.String("o", "BENCH_core.json", "output report path")
	)
	flag.Parse()

	rep := report{
		Name:          "core",
		Timestamp:     time.Now().UTC(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workload:      *wl,
		WarmInstrs:    *warm,
		MeasureInstrs: *measure,
		Seed:          *seed,
	}

	if *profPath != "" {
		f, err := os.Create(*profPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	coreCounts, err := parseCores(*coreSet)
	if err != nil {
		fatal(err)
	}
	for _, scheme := range strings.Split(*schemes, ",") {
		for _, cores := range coreCounts {
			p, err := run(scheme, cores, *wl, *warm, *measure, *seed)
			if err != nil {
				fatal(err)
			}
			rep.Points = append(rep.Points, p)
			fmt.Printf("%-14s %d-core: %8.2f Minstr/s (IPC %.3f)\n",
				scheme, cores, p.InstrsPerSec/1e6, p.AggregateIPC)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// run builds one machine, warms it, and times the measured window.
func run(scheme string, cores int, wl string, warm, measure, seed uint64) (point, error) {
	cfg := cmp.DefaultConfig(cores)
	cfg.PrefetcherName = scheme
	srcs, err := cmp.SourcesFor([]string{wl}, cores, seed)
	if err != nil {
		return point{}, err
	}
	sys, err := cmp.New(cfg, srcs, nil)
	if err != nil {
		return point{}, err
	}
	sys.Run(warm)
	sys.ResetStats()

	start := time.Now()
	sys.Run(measure)
	secs := time.Since(start).Seconds()

	sys.Finalize()
	t := sys.TotalStats()
	per1k := func(n uint64) float64 { return 1000 * float64(n) / float64(t.Instructions) }
	return point{
		Scheme:        scheme,
		Cores:         cores,
		Instructions:  t.Instructions,
		Seconds:       secs,
		InstrsPerSec:  float64(t.Instructions) / secs,
		AggregateIPC:  sys.AggregateIPC(),
		L1IMissPer1k:  per1k(t.L1I.Misses),
		PrefetchesPer: per1k(t.Prefetch.Issued),
	}, nil
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corebench:", err)
	os.Exit(1)
}
