// Command prefbench measures the prefetcher zoo: for each scheme ×
// insertion policy × TLB-fill policy × paper workload it reports
// simulation throughput (Minstr/s), prefetch accuracy (useful/issued)
// and miss coverage (L1I miss reduction versus the no-prefetch baseline
// on the same workload), and writes a BENCH_pref.json snapshot so
// scheme, arbitration, and co-design changes can track the trend across
// PRs. Composite ("hybrid:...") schemes additionally report their
// per-component attribution.
//
// Usage:
//
//	prefbench [-n instrs] [-warm instrs] [-seed n]
//	          [-schemes a,b,c] [-workloads DB,TPC-W,...]
//	          [-inserts mru,mid,lru] [-tlb-fills none,primary]
//	          [-o BENCH_pref.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cmp"
	"repro/internal/codesign"
)

// component is one attribution row of a composite point.
type component struct {
	Name     string  `json:"name"`
	Issued   uint64  `json:"issued"`
	Useful   uint64  `json:"useful"`
	Accuracy float64 `json:"accuracy"`
}

// point is one (scheme, workload) measurement.
type point struct {
	Scheme       string      `json:"scheme"`
	Workload     string      `json:"workload"`
	Insert       string      `json:"insert,omitempty"`
	TLBFill      string      `json:"tlb_fill,omitempty"`
	Instructions uint64      `json:"instructions"`
	Seconds      float64     `json:"seconds"`
	InstrsPerSec float64     `json:"instrs_per_sec"`
	IPC          float64     `json:"ipc"`
	Issued       uint64      `json:"issued"`
	Useful       uint64      `json:"useful"`
	Accuracy     float64     `json:"accuracy"`
	Coverage     float64     `json:"coverage"`
	L1IMissPer1k float64     `json:"l1i_misses_per_1k_instrs"`
	Components   []component `json:"components,omitempty"`
}

// report is the BENCH_pref.json schema.
type report struct {
	Name          string    `json:"name"`
	Timestamp     time.Time `json:"timestamp"`
	GoMaxProcs    int       `json:"gomaxprocs"`
	WarmInstrs    uint64    `json:"warm_instrs"`
	MeasureInstrs uint64    `json:"measure_instrs"`
	Seed          uint64    `json:"seed"`
	Points        []point   `json:"points"`
}

func main() {
	var (
		measure   = flag.Uint64("n", 1_000_000, "measured instructions per core")
		warm      = flag.Uint64("warm", 100_000, "warm-up instructions per core")
		seed      = flag.Uint64("seed", 1, "workload seed")
		schemes   = flag.String("schemes", "discontinuity,streams,mana,progmap,hybrid:discontinuity+streams+mana", "comma-separated schemes to measure")
		workloads = flag.String("workloads", "DB,TPC-W,jApp,Web", "comma-separated workloads")
		inserts   = flag.String("inserts", "mru,mid,lru", "comma-separated prefetch insertion policies")
		tlbFills  = flag.String("tlb-fills", "none,primary", "comma-separated prefetch TLB-fill policies")
		out       = flag.String("o", "BENCH_pref.json", "output report path")
	)
	flag.Parse()

	rep := report{
		Name:          "pref",
		Timestamp:     time.Now().UTC(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		WarmInstrs:    *warm,
		MeasureInstrs: *measure,
		Seed:          *seed,
	}

	for _, wl := range strings.Split(*workloads, ",") {
		wl = strings.TrimSpace(wl)
		// The no-prefetch default-policy baseline anchors coverage for
		// this workload across every policy row.
		base, err := run("none", wl, "", "", *warm, *measure, *seed)
		if err != nil {
			fatal(err)
		}
		baseMissRate := base.L1IMissPer1k
		for _, scheme := range strings.Split(*schemes, ",") {
			scheme = strings.TrimSpace(scheme)
			for _, ins := range strings.Split(*inserts, ",") {
				ins = strings.TrimSpace(ins)
				for _, tf := range strings.Split(*tlbFills, ",") {
					tf = strings.TrimSpace(tf)
					p, err := run(scheme, wl, ins, tf, *warm, *measure, *seed)
					if err != nil {
						fatal(err)
					}
					if baseMissRate > 0 {
						p.Coverage = 1 - p.L1IMissPer1k/baseMissRate
					}
					rep.Points = append(rep.Points, p)
					fmt.Printf("%-36s %-6s ins=%-4s tlb=%-8s %7.2f Minstr/s  acc %5.1f%%  cov %5.1f%%\n",
						scheme, wl, orDefault(p.Insert, "mru"), orDefault(p.TLBFill, "none"),
						p.InstrsPerSec/1e6, 100*p.Accuracy, 100*p.Coverage)
				}
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// orDefault substitutes the canonical default name for an empty policy
// in console output (the JSON keeps "" so historical rows stay stable).
func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// run builds a single-core machine, warms it, and times the window.
func run(scheme, wl, insert, tlbFill string, warm, measure, seed uint64) (point, error) {
	cfg := cmp.DefaultConfig(1)
	cfg.PrefetcherName = scheme
	insCanon, err := codesign.CanonicalInsertion(insert)
	if err != nil {
		return point{}, err
	}
	tfCanon, err := codesign.CanonicalTLBFill(tlbFill)
	if err != nil {
		return point{}, err
	}
	ins, _ := codesign.ParseInsertion(insert)
	tf, _ := codesign.ParseTLBFill(tlbFill)
	cfg.FrontEnd.PrefetchInsert = ins
	cfg.Mem.PrefetchInsert = ins
	cfg.FrontEnd.TLBFill = tf
	srcs, err := cmp.SourcesFor([]string{wl}, 1, seed)
	if err != nil {
		return point{}, err
	}
	sys, err := cmp.New(cfg, srcs, nil)
	if err != nil {
		return point{}, err
	}
	sys.Run(warm)
	sys.ResetStats()

	start := time.Now()
	sys.Run(measure)
	secs := time.Since(start).Seconds()

	sys.Finalize()
	t := sys.TotalStats()
	p := point{
		Scheme:       scheme,
		Workload:     wl,
		Insert:       insCanon,
		TLBFill:      tfCanon,
		Instructions: t.Instructions,
		Seconds:      secs,
		InstrsPerSec: float64(t.Instructions) / secs,
		IPC:          t.IPC(),
		Issued:       t.Prefetch.Issued,
		Useful:       t.Prefetch.Useful,
		Accuracy:     t.Prefetch.Accuracy(),
		L1IMissPer1k: 1000 * float64(t.L1I.Misses) / float64(t.Instructions),
	}
	for _, c := range t.Components {
		p.Components = append(p.Components, component{
			Name: c.Name, Issued: c.Issued, Useful: c.Useful, Accuracy: c.Accuracy(),
		})
	}
	return p, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefbench:", err)
	os.Exit(1)
}
