// Command tracegen records, inspects and validates basic-block traces of
// the built-in workloads (the library's stand-in for the paper's
// trace-driven methodology).
//
// Usage:
//
//	tracegen record  -app DB -n 1000000 -seed 1 -o db.trc [-timeout 30s]
//	tracegen stats   -i db.trc
//	tracegen analyze -app DB -n 1000000   # footprint/reuse/discontinuity study
//	tracegen analyze -i db.trc            # same, over a recorded trace
//	tracegen list                         # list built-in workloads
//
// record and analyze honour SIGINT/SIGTERM and -timeout: the run stops
// cooperatively with exit status 1, and an interrupted record leaves a
// valid trace of the blocks captured so far.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "record":
		record(ctx, os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "analyze":
		analyzeCmd(ctx, os.Args[2:])
	case "list":
		list()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracegen record|stats|analyze|list [flags]")
	os.Exit(2)
}

// withTimeout bounds ctx by the -timeout flag value (0 = no limit).
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

func record(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "DB", "workload name")
	n := fs.Uint64("n", 1_000_000, "number of basic blocks to record")
	seed := fs.Uint64("seed", 1, "stream seed")
	out := fs.String("o", "", "output file (default stdout)")
	timeout := fs.Duration("timeout", 0, "abort recording after this long (0 = no limit)")
	fs.Parse(args)
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := repro.RecordTraceContext(ctx, w, *app, *seed, *n); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "recording interrupted (%v); partial trace is valid\n", err)
			os.Exit(1)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "recorded %d blocks of %s\n", *n, *app)
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (default stdin)")
	fs.Parse(args)

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	st, err := repro.ReadTraceStats(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload      %s\n", st.Workload)
	fmt.Printf("blocks        %d\n", st.Blocks)
	fmt.Printf("instructions  %d\n", st.Instructions)
	fmt.Printf("memops        %d (%.3f per instruction)\n", st.MemOps,
		float64(st.MemOps)/float64(st.Instructions))
	fmt.Printf("CTI mix:\n")
	keys := make([]string, 0, len(st.CTIMix))
	for k := range st.CTIMix {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return st.CTIMix[keys[i]] > st.CTIMix[keys[j]] })
	for _, k := range keys {
		fmt.Printf("  %-16s %.2f%%\n", k, 100*st.CTIMix[k])
	}
}

func analyzeCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	app := fs.String("app", "", "workload name to analyze live (mutually exclusive with -i)")
	in := fs.String("i", "", "recorded trace to analyze")
	n := fs.Uint64("n", 1_000_000, "blocks to analyze (live mode)")
	seed := fs.Uint64("seed", 1, "stream seed (live mode)")
	timeout := fs.Duration("timeout", 0, "abort analysis after this long (0 = no limit)")
	fs.Parse(args)
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()

	switch {
	case *app != "" && *in != "":
		fatal(fmt.Errorf("use either -app or -i, not both"))
	case *app != "":
		if err := repro.AnalyzeWorkloadContext(ctx, os.Stdout, *app, *seed, *n); err != nil {
			fatal(err)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := repro.AnalyzeTraceContext(ctx, os.Stdout, f); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("analyze needs -app or -i"))
	}
}

func list() {
	for _, w := range repro.Workloads() {
		fmt.Printf("%-6s %5d functions, %.1f MB code — %s\n",
			w.Name, w.Functions, float64(w.CodeBytes)/(1<<20), w.Description)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
