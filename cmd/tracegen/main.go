// Command tracegen records, inspects and validates basic-block traces of
// the built-in workloads (the library's stand-in for the paper's
// trace-driven methodology).
//
// Usage:
//
//	tracegen record  -app DB -n 1000000 -seed 1 -o db.itf -v2 [-chunk 4096]
//	tracegen record  -app DB -n 1000000 -seed 1 -o db.trc       # flat v1 stream
//	tracegen stats   -i db.itf
//	tracegen analyze -app DB -n 1000000   # footprint/reuse/discontinuity study
//	tracegen analyze -i db.itf            # same, over a recorded trace
//	tracegen verify  -i db.itf            # chunk CRCs + index + counts
//	tracegen verify  -data ./results -id <sha256>   # corpus entry + fingerprint
//	tracegen ingest  -i db.trc -data ./results      # v1/v2 file -> corpus entry
//	tracegen ingest  -app DB -n 1000000 -data ./results  # capture straight in
//	tracegen corpus  -data ./results      # list corpus entries
//	tracegen corpus  -data ./results -select 'footprint>4096,cti>0.1'
//	tracegen dedup-stats -data ./results [-json]   # chunk-sharing report
//	tracegen gc      -data ./results [-grace 1h] [-dry-run] [-json]
//	tracegen list                         # list built-in workloads
//
// dedup-stats and gc are scripting-friendly: exit 0 on success, 1 on
// store errors, 2 on usage errors; -json emits one machine-readable
// object on stdout.
//
// record and analyze honour SIGINT/SIGTERM and -timeout: the run stops
// cooperatively with exit status 1, and an interrupted record leaves a
// valid trace of the blocks captured so far (v2 containers are
// finalised with their index and footer on interruption).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro"
	"repro/internal/corpus"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "record":
		record(ctx, os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "analyze":
		analyzeCmd(ctx, os.Args[2:])
	case "verify":
		verifyCmd(os.Args[2:])
	case "ingest":
		ingestCmd(ctx, os.Args[2:])
	case "corpus":
		corpusCmd(os.Args[2:])
	case "dedup-stats":
		dedupStatsCmd(os.Args[2:])
	case "gc":
		gcCmd(os.Args[2:])
	case "list":
		list()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracegen record|stats|analyze|verify|ingest|corpus|dedup-stats|gc|list [flags]")
	os.Exit(2)
}

// withTimeout bounds ctx by the -timeout flag value (0 = no limit).
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

func record(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "DB", "workload name")
	n := fs.Uint64("n", 1_000_000, "number of basic blocks to record")
	seed := fs.Uint64("seed", 1, "stream seed")
	out := fs.String("o", "", "output file (default stdout)")
	v2 := fs.Bool("v2", false, "write the chunked IPFTRC02 container (compressed, CRC'd, seekable)")
	chunk := fs.Int("chunk", 0, "blocks per chunk for -v2 (0 = default)")
	timeout := fs.Duration("timeout", 0, "abort recording after this long (0 = no limit)")
	fs.Parse(args)
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *v2 {
		err = repro.RecordTraceV2Context(ctx, w, *app, *seed, *n, *chunk)
	} else {
		err = repro.RecordTraceContext(ctx, w, *app, *seed, *n)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "recording interrupted (%v); partial trace is valid\n", err)
			os.Exit(1)
		}
		fatal(err)
	}
	format := "v1"
	if *v2 {
		format = "v2"
	}
	fmt.Fprintf(os.Stderr, "recorded %d blocks of %s (%s)\n", *n, *app, format)
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (default stdin)")
	fs.Parse(args)

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	st, err := repro.ReadTraceStats(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload      %s\n", st.Workload)
	fmt.Printf("format        %s\n", st.Format)
	fmt.Printf("blocks        %d\n", st.Blocks)
	fmt.Printf("instructions  %d\n", st.Instructions)
	fmt.Printf("memops        %d (%.3f per instruction)\n", st.MemOps,
		float64(st.MemOps)/float64(st.Instructions))
	fmt.Printf("CTI mix:\n")
	keys := make([]string, 0, len(st.CTIMix))
	for k := range st.CTIMix {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return st.CTIMix[keys[i]] > st.CTIMix[keys[j]] })
	for _, k := range keys {
		fmt.Printf("  %-16s %.2f%%\n", k, 100*st.CTIMix[k])
	}
}

func analyzeCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	app := fs.String("app", "", "workload name to analyze live (mutually exclusive with -i)")
	in := fs.String("i", "", "recorded trace to analyze")
	n := fs.Uint64("n", 1_000_000, "blocks to analyze (live mode)")
	seed := fs.Uint64("seed", 1, "stream seed (live mode)")
	timeout := fs.Duration("timeout", 0, "abort analysis after this long (0 = no limit)")
	fs.Parse(args)
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()

	switch {
	case *app != "" && *in != "":
		fatal(fmt.Errorf("use either -app or -i, not both"))
	case *app != "":
		if err := repro.AnalyzeWorkloadContext(ctx, os.Stdout, *app, *seed, *n); err != nil {
			fatal(err)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := repro.AnalyzeTraceContext(ctx, os.Stdout, f); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("analyze needs -app or -i"))
	}
}

// verifyCmd checks integrity: every chunk CRC, count and the index for
// a container file, plus the content hash and stream fingerprint for a
// corpus entry.
func verifyCmd(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("i", "", "container file to verify")
	data := fs.String("data", "", "data directory holding a corpus (with -id)")
	id := fs.String("id", "", "corpus entry hash to verify (with -data)")
	fs.Parse(args)

	switch {
	case *in != "" && (*data != "" || *id != ""):
		fatal(fmt.Errorf("use either -i or -data/-id, not both"))
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		st, err := repro.ReadTraceStats(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s %s, %d blocks, %d instructions\n",
			st.Format, st.Workload, st.Blocks, st.Instructions)
	case *data != "" && *id != "":
		store, err := corpus.Open(filepath.Join(*data, "corpus"))
		if err != nil {
			fatal(err)
		}
		if err := store.Verify(*id); err != nil {
			fatal(err)
		}
		m, err := store.Get(*id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s (%s) %d blocks, %d instructions, %d chunks, %d bytes; fingerprint matches\n",
			m.ID[:12], m.Name, m.Blocks, m.Instructions, m.Chunks, m.SizeBytes)
	default:
		fatal(fmt.Errorf("verify needs -i, or -data and -id"))
	}
}

// ingestCmd converts a trace file (or a live capture) into a
// content-addressed corpus entry.
func ingestCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	in := fs.String("i", "", "trace file to ingest (v1 or v2; mutually exclusive with -app)")
	app := fs.String("app", "", "workload to capture live")
	n := fs.Uint64("n", 1_000_000, "blocks to capture (live mode)")
	seed := fs.Uint64("seed", 1, "stream seed (live mode)")
	chunk := fs.Int("chunk", 0, "blocks per chunk (0 = default)")
	data := fs.String("data", "", "data directory holding the corpus (required)")
	timeout := fs.Duration("timeout", 0, "abort capture after this long (0 = no limit)")
	fs.Parse(args)
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()

	if *data == "" {
		fatal(fmt.Errorf("ingest needs -data"))
	}
	store, err := corpus.Open(filepath.Join(*data, "corpus"))
	if err != nil {
		fatal(err)
	}
	var m corpus.Manifest
	switch {
	case *in != "" && *app != "":
		fatal(fmt.Errorf("use either -i or -app, not both"))
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if m, err = store.Ingest(f, *chunk, "ingest"); err != nil {
			fatal(err)
		}
	case *app != "":
		var buf bytes.Buffer
		if err := repro.RecordTraceV2Context(ctx, &buf, *app, *seed, *n, *chunk); err != nil {
			fatal(err)
		}
		if m, err = store.Put(bytes.NewReader(buf.Bytes()), "capture"); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("ingest needs -i or -app"))
	}
	fmt.Printf("%s\n", m.ID)
	fmt.Fprintf(os.Stderr, "ingested %s: %d blocks, %d instructions, %d chunks, %d bytes\n",
		m.Name, m.Blocks, m.Instructions, m.Chunks, m.SizeBytes)
}

// corpusCmd lists the entries of a corpus.
func corpusCmd(args []string) {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	data := fs.String("data", "", "data directory holding the corpus (required)")
	sel := fs.String("select", "", "fingerprint selector, e.g. 'footprint>4096,cti>0.1' (empty = all)")
	fs.Parse(args)
	store := openCorpus(*data, "corpus")
	ids, err := store.Select(*sel)
	if err != nil {
		usageFatal(err)
	}
	for _, id := range ids {
		m, err := store.Get(id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s  %-6s %10d blocks %12d instrs %5d chunks %10d bytes  %s\n",
			m.ID[:12], m.Name, m.Blocks, m.Instructions, m.Chunks, m.SizeBytes,
			m.CreatedAt.Format("2006-01-02 15:04"))
	}
}

// openCorpus opens <data>/corpus or exits with a usage error when
// -data is missing.
func openCorpus(data, cmd string) *corpus.Store {
	if data == "" {
		usageFatal(fmt.Errorf("%s needs -data", cmd))
	}
	store, err := corpus.Open(filepath.Join(data, "corpus"))
	if err != nil {
		fatal(err)
	}
	return store
}

// dedupStatsCmd reports how much the chunk CAS is sharing: entry and
// chunk counts, logical vs stored bytes, and the dedup/space ratios.
func dedupStatsCmd(args []string) {
	fs := flag.NewFlagSet("dedup-stats", flag.ExitOnError)
	data := fs.String("data", "", "data directory holding the corpus (required)")
	asJSON := fs.Bool("json", false, "emit one JSON object instead of text")
	fs.Parse(args)
	store := openCorpus(*data, "dedup-stats")
	st, err := store.CorpusStats()
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("entries        %d\n", st.Entries)
	fmt.Printf("chunk refs     %d\n", st.ChunkRefs)
	fmt.Printf("unique chunks  %d\n", st.UniqueChunks)
	fmt.Printf("orphan chunks  %d\n", st.OrphanChunks)
	fmt.Printf("logical bytes  %d\n", st.LogicalBytes)
	fmt.Printf("stored bytes   %d\n", st.StoredBytes)
	fmt.Printf("dedup ratio    %.3f\n", st.DedupRatio)
	fmt.Printf("space saved    %.3f\n", st.SpaceSaved)
}

// gcCmd runs one mark-and-sweep pass over the chunk CAS.
func gcCmd(args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	data := fs.String("data", "", "data directory holding the corpus (required)")
	grace := fs.Duration("grace", 0, "protect chunks newer than this (0 = 1h default, negative = none)")
	dryRun := fs.Bool("dry-run", false, "report what would be deleted without deleting")
	asJSON := fs.Bool("json", false, "emit one JSON object instead of text")
	fs.Parse(args)
	store := openCorpus(*data, "gc")
	st, err := store.GC(corpus.GCOptions{Grace: *grace, DryRun: *dryRun})
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
		return
	}
	verb := "deleted"
	if st.DryRun {
		verb = "would delete"
	}
	fmt.Printf("%s %d of %d chunks (%d bytes); %d live, %d in grace window\n",
		verb, st.Deleted, st.Scanned, st.Reclaimed, st.Live, st.Skipped)
}

func list() {
	for _, w := range repro.Workloads() {
		fmt.Printf("%-6s %5d functions, %.1f MB code — %s\n",
			w.Name, w.Functions, float64(w.CodeBytes)/(1<<20), w.Description)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// usageFatal reports a usage-level mistake (missing flag, malformed
// selector) with the scripting exit code 2.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
