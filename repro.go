// Package repro is a library reproduction of "Effective Instruction
// Prefetching in Chip Multiprocessors for Modern Commercial
// Applications" (Spracklen, Chou & Abraham, HPCA 2005).
//
// It bundles, behind one public API:
//
//   - synthetic commercial workloads (an OLTP database, TPC-W,
//     SPECjAppServer2002 and SPECweb99 stand-ins) with calibrated
//     instruction-footprint, control-flow and data-locality behaviour;
//   - a timing simulator for a single-core processor or a 4-way CMP with
//     private L1s, a shared unified L2, finite off-chip bandwidth,
//     branch predictors and TLBs;
//   - the paper's hardware instruction prefetchers: the sequential
//     family (next-line always/on-miss/tagged, next-N-line, lookahead),
//     a history-based target prefetcher, and the paper's contribution —
//     the discontinuity prefetcher with prefetch filtering and the
//     L2-bypass install policy;
//   - experiment runners that regenerate every figure of the paper's
//     evaluation as a table.
//
// # Quick start
//
//	m, _ := repro.NewMachine(repro.MachineConfig{
//	    Cores:      4,
//	    Workloads:  []string{"DB"},
//	    Prefetcher: repro.PrefetcherDiscontinuity,
//	    BypassL2:   true,
//	})
//	m.Run(1_000_000) // warm up
//	m.ResetStats()
//	m.Run(2_000_000)
//	fmt.Println(m.Metrics().IPC)
//
// # Reproducing the paper
//
//	eng := repro.NewExperiments(repro.ExperimentConfig{})
//	for _, fig := range eng.Figures() {
//	    for _, table := range fig.Run() {
//	        fmt.Println(table)
//	    }
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package repro

// Version identifies the library release.
const Version = "1.0.0"
